package core

import (
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Pre-validated transition cache (the VMFUNC discipline, §4.1: "fast
// (100 cycles) domain transitions using VMFUNC"). A mediated Call/Return
// normally revalidates the target on every transfer and pays the full
// exit/entry round trip through the backend. The cache moves that
// validation to fill time: after a successful slow call the pair is
// registered with the backend as a fast pair and the validated facts
// (entry point, privilege ring) are remembered per core, stamped with
// two generation counters:
//
//   - the capability-space generation (bumped by every share, grant,
//     revoke, and seal — anything that could change who may run where),
//   - the target domain's config generation (bumped by entry-point,
//     entry-ring, and seal mutations, which do not touch the space).
//
// A repeat switch hits the cache only if both stamps still match and
// the target is still live; then the monitor performs the transfer on
// the backend's fast path (VMFunc cost) with no revalidation. Any
// stamp mismatch is a miss: the slow path runs, revalidates, and
// refreshes the cache. Correctness never depends on explicit
// invalidation — a revocation anywhere bumps the space generation and
// every cached transition in the system goes stale at once.
//
// The cache is strictly opt-in (SetTransitionCache); default-off runs
// are byte-for-byte identical to pre-cache builds. Entries live in the
// per-core coreSched under its mutex, so the cache adds no cross-core
// contention to the transition path.

// tcKey identifies one cached direction of a switch pair on a core.
type tcKey struct {
	from, to DomainID
}

// tcEntry is one pre-validated transition: the facts checked at fill
// time plus the generation stamps that bound their validity.
type tcEntry struct {
	entry  phys.Addr
	ring   hw.Ring
	capGen uint64
	cfgGen uint64
	// retOnly entries authorise only the return direction (restoring a
	// saved context); they carry no entry point.
	retOnly bool
}

// SetTransitionCache toggles the pre-validated transition cache. Both
// edges clear every per-core cache so stale entries from a previous
// enable can never be consulted.
func (m *Monitor) SetTransitionCache(on bool) {
	m.tcOn.Store(on)
	for _, sc := range m.sched {
		sc.mu.Lock()
		sc.tcache = nil
		sc.mu.Unlock()
	}
}

// cachedCall attempts the pre-validated fast path for call(). It
// returns done=true when the transfer fully happened (err is then the
// transfer's result); done=false sends the caller to the slow path,
// with the miss already counted. Caller holds the shared monitor lock.
func (m *Monitor) cachedCall(core phys.CoreID, target DomainID) (done bool, err error) {
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	cur, ok := m.currentDomain(core, sc)
	if !ok {
		return false, nil // slow path reports ErrNotRunning
	}
	e, ok := sc.tcache[tcKey{from: cur, to: target}]
	if !ok || e.retOnly {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	td, ok := m.tab.Load().doms[target]
	if !ok || td.State() == StateDead ||
		e.capGen != m.space.Generation() || e.cfgGen != td.cfgGen.Load() {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	c := m.mach.Core(core)
	curCtx, cerr := m.bk.Context(cap.OwnerID(cur), core)
	if cerr != nil {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	c.SaveInto(curCtx)
	var args [6]uint64
	copy(args[:], c.Regs[:6])
	if terr := m.bk.Transition(c, cap.OwnerID(target), true); terr != nil {
		// No backend fast pair (or it was dropped): slow path revalidates
		// and refills. The context save above is idempotent — the slow
		// path saves the same unchanged registers again.
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	c.Regs = [hw.NumRegs]uint64{}
	copy(c.Regs[:6], args[:])
	c.PC = e.entry
	c.Ring = e.ring
	sc.frames = append(sc.frames, cur)
	sc.cur, sc.hasCur = target, true
	m.stats.transitions.Add(1)
	m.stats.tcHits.Add(1)
	m.emitCore(core, trace.KTransition, target, uint64(cur), 0, 0, trace.TransCall)
	return true, nil
}

// cachedReturn attempts the pre-validated fast path for ret(). Caller
// holds the shared monitor lock.
func (m *Monitor) cachedReturn(core phys.CoreID) (done bool, err error) {
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.frames) == 0 {
		return false, nil // slow path reports ErrCallDepth
	}
	caller := sc.frames[len(sc.frames)-1]
	e, ok := sc.tcache[tcKey{from: sc.cur, to: caller}]
	if !ok {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	cd, ok := m.tab.Load().doms[caller]
	if !ok || cd.State() == StateDead ||
		e.capGen != m.space.Generation() || e.cfgGen != cd.cfgGen.Load() {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	c := m.mach.Core(core)
	callerCtx, cerr := m.bk.Context(cap.OwnerID(caller), core)
	if cerr != nil {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	ret0, ret1 := c.Regs[0], c.Regs[1]
	if terr := m.bk.Transition(c, cap.OwnerID(caller), true); terr != nil {
		m.stats.tcMisses.Add(1)
		return false, nil
	}
	sc.frames = sc.frames[:len(sc.frames)-1]
	c.RestoreFrom(callerCtx)
	c.Regs[0], c.Regs[1] = ret0, ret1
	returning := sc.cur
	sc.cur, sc.hasCur = caller, true
	m.stats.transitions.Add(1)
	m.stats.tcHits.Add(1)
	m.emitCore(core, trace.KTransition, caller, uint64(returning), 0, 0, trace.TransReturn)
	return true, nil
}

// tcFill caches a just-validated call pair: the backend registers the
// fast pair (both contexts exist — the caller was saved into, the
// target was just entered), and both directions are stamped with the
// current generations. Backends without a fast path (PMP) refuse the
// registration and nothing is cached — every switch stays a counted
// miss. Caller holds the shared monitor lock and sc.mu.
func (m *Monitor) tcFill(sc *coreSched, core phys.CoreID, cur, target DomainID, td *Domain, entry phys.Addr, ring hw.Ring) {
	if !m.tcOn.Load() {
		return
	}
	if err := m.bk.RegisterFastPair(core, cap.OwnerID(cur), cap.OwnerID(target)); err != nil {
		return
	}
	if sc.tcache == nil {
		sc.tcache = make(map[tcKey]tcEntry)
	}
	gen := m.space.Generation()
	sc.tcache[tcKey{from: cur, to: target}] = tcEntry{
		entry:  entry,
		ring:   ring,
		capGen: gen,
		cfgGen: td.cfgGen.Load(),
	}
	// The reverse direction authorises the paired Return: no entry point
	// (a return restores the saved context), stamped against the caller.
	if cd, ok := m.tab.Load().doms[cur]; ok {
		rk := tcKey{from: target, to: cur}
		// Refresh (or create) the reverse stamp, but never downgrade a
		// full call entry for that direction to return-only.
		if prev, exists := sc.tcache[rk]; !exists || prev.retOnly {
			sc.tcache[rk] = tcEntry{
				capGen:  gen,
				cfgGen:  cd.cfgGen.Load(),
				retOnly: true,
			}
		}
	}
}
