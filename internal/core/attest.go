package core

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
)

// This file implements the monitor half of the two-tier attestation
// protocol (§3.4, following TrustVisor): tier one binds the monitor's
// attestation key to the TPM-measured boot (BootQuote); tier two has
// the now-trusted monitor sign per-domain reports enumerating physical
// resources, reference counts, and measurements.

// MeasuredRegion pairs a region with its measured content.
type MeasuredRegion struct {
	Region  phys.Region
	Content []byte
}

// ComputeMeasurement derives a domain measurement from its entry point
// and measured initial memory. The encoding is canonical so that the
// offline hashing tool (tyche-hash, §4.2: "generating a binary's hash
// offline to be compared with the attestation provided by Tyche")
// reproduces it exactly.
func ComputeMeasurement(entry phys.Addr, regions []MeasuredRegion) tpm.Digest {
	h := sha256.New()
	h.Write([]byte("tyche-domain-measurement-v1"))
	binary.Write(h, binary.LittleEndian, uint64(entry))
	binary.Write(h, binary.LittleEndian, uint64(len(regions)))
	for _, r := range regions {
		binary.Write(h, binary.LittleEndian, uint64(r.Region.Start))
		binary.Write(h, binary.LittleEndian, uint64(r.Region.End))
		binary.Write(h, binary.LittleEndian, uint64(len(r.Content)))
		h.Write(r.Content)
	}
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return d
}

// ResourceRecord is one entry of a domain's attested resource
// enumeration.
type ResourceRecord struct {
	Resource cap.Resource
	Rights   cap.Rights
	// RefCount is the system-wide reference count: the number of
	// distinct domains with access. 1 means exclusive; 2 means shared
	// with exactly one other domain (§3.1).
	RefCount int
}

// Report is a signed domain attestation (tier two).
type Report struct {
	Domain      DomainID
	Name        string
	Nonce       []byte
	Sealed      bool
	Entry       phys.Addr
	Measurement tpm.Digest
	// ReportData is the domain-chosen digest bound into the report
	// (zero if the domain never set one).
	ReportData tpm.Digest
	Resources  []ResourceRecord
	// MonitorKey identifies the signing monitor (bound to the TPM via
	// BootQuote).
	MonitorKey ed25519.PublicKey
	Sig        []byte
}

// reportMessage builds the canonical byte string that is signed.
func reportMessage(r *Report) []byte {
	var b bytes.Buffer
	b.WriteString("tyche-domain-report-v1")
	binary.Write(&b, binary.LittleEndian, uint64(r.Domain))
	writeBytes(&b, []byte(r.Name))
	writeBytes(&b, r.Nonce)
	if r.Sealed {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	binary.Write(&b, binary.LittleEndian, uint64(r.Entry))
	b.Write(r.Measurement[:])
	b.Write(r.ReportData[:])
	binary.Write(&b, binary.LittleEndian, uint64(len(r.Resources)))
	for _, rec := range r.Resources {
		binary.Write(&b, binary.LittleEndian, uint32(rec.Resource.Kind))
		binary.Write(&b, binary.LittleEndian, uint64(rec.Resource.Mem.Start))
		binary.Write(&b, binary.LittleEndian, uint64(rec.Resource.Mem.End))
		binary.Write(&b, binary.LittleEndian, int64(rec.Resource.Core))
		binary.Write(&b, binary.LittleEndian, int64(rec.Resource.Device))
		binary.Write(&b, binary.LittleEndian, uint32(rec.Rights))
		binary.Write(&b, binary.LittleEndian, uint64(rec.RefCount))
	}
	writeBytes(&b, r.MonitorKey)
	return b.Bytes()
}

func writeBytes(b *bytes.Buffer, p []byte) {
	binary.Write(b, binary.LittleEndian, uint64(len(p)))
	b.Write(p)
}

// Attest produces a signed report for the domain, fresh for the given
// nonce. Reports are not secret: any live domain (or the embedding
// system on behalf of a remote verifier) may request one.
//
// The expensive work — resource enumeration and the signature — runs
// without any monitor entry: the domain record is snapshotted under
// its own mutex and every capability query is internally consistent.
// Only the final commit (counter + trace event) is a pinned reader
// entry that re-checks liveness, so a report is never announced for a
// domain that has since been killed, and the KAttest emit is sequenced
// before any concurrent kill's KKill.
func (m *Monitor) Attest(id DomainID, nonce []byte) (*Report, error) {
	r, d, err := m.buildReport(id, nonce)
	if err != nil {
		return nil, err
	}
	p := m.renter()
	defer m.rexit(p)
	return m.commitReport(r, d)
}

// attestLocked is Attest with a monitor entry already held (the ring
// drain executes attest descriptors inside its destructive-family
// entry, whose locks are not reentrant).
func (m *Monitor) attestLocked(id DomainID, nonce []byte) (*Report, error) {
	r, d, err := m.buildReport(id, nonce)
	if err != nil {
		return nil, err
	}
	return m.commitReport(r, d)
}

// buildReport assembles and signs the report lock-free.
func (m *Monitor) buildReport(id DomainID, nonce []byte) (*Report, *Domain, error) {
	d, err := m.liveDomain(id)
	if err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	entry := d.entry
	measurement := d.measurement
	reportData := d.reportData
	d.mu.Unlock()
	r := &Report{
		Domain:      id,
		Name:        d.name,
		Nonce:       append([]byte(nil), nonce...),
		Sealed:      d.State() == StateSealed,
		Entry:       entry,
		Measurement: measurement,
		ReportData:  reportData,
		Resources:   m.enumerate(cap.OwnerID(id)),
		MonitorKey:  m.AttestationKey(),
	}
	r.Sig = ed25519.Sign(m.attPriv, reportMessage(r))
	return r, d, nil
}

// commitReport re-checks liveness and announces the report (monitor
// lock held, shared or exclusive).
func (m *Monitor) commitReport(r *Report, d *Domain) (*Report, error) {
	if d.State() == StateDead {
		return nil, fmt.Errorf("%w: %d", ErrDead, d.id)
	}
	m.stats.attests.Add(1)
	m.emit(trace.KAttest, d.id, 0, 0, 0, 0)
	return r, nil
}

// ErrBadReport reports a report that fails signature verification.
var ErrBadReport = errors.New("core: report signature invalid")

// VerifyReport checks a report's signature under the monitor key it
// names. Callers must separately establish trust in that key via
// VerifyBootQuote — this function only checks integrity.
func VerifyReport(r *Report) error {
	if r == nil {
		return errors.New("core: nil report")
	}
	if len(r.MonitorKey) != ed25519.PublicKeySize {
		return fmt.Errorf("core: malformed monitor key (%d bytes)", len(r.MonitorKey))
	}
	if !ed25519.Verify(r.MonitorKey, reportMessage(r), r.Sig) {
		return ErrBadReport
	}
	return nil
}

// BootQuote produces tier-one evidence: a TPM quote over the firmware
// and monitor PCRs, with the monitor's attestation public key as the
// quoted user data. A verifier checks the quote against the TPM's
// endorsement key and the PCR value against the expected monitor
// measurement, then trusts reports signed by the bound key.
func (m *Monitor) BootQuote(nonce []byte) (*tpm.Quote, error) {
	return m.rot.MakeQuote(nonce, []int{tpm.PCRFirmware, tpm.PCRMonitor}, m.attPub)
}

// ExpectedMonitorPCR computes the PCR-17 value a verifier expects for a
// monitor with the given identity blob: one extend of the identity
// measurement into a zero PCR.
func ExpectedMonitorPCR(identity []byte) tpm.Digest {
	meas := tpm.Measure(identity)
	h := sha256.New()
	h.Write(make([]byte, tpm.DigestSize))
	h.Write(meas[:])
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return d
}
