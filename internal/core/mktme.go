package core

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/hw"
)

// Memory-encryption policy (§4.2 future work: "building physical attack
// resistance with multi-key memory encryption technologies"). When the
// machine has an MKTME engine, the monitor keys memory by *trust*, not
// by request: every region held exclusively (reference count 1) is
// encrypted under its owner's key; explicitly shared regions fall back
// to the platform key so both parties can access them; killing a domain
// crypto-erases its key before its pages return to the granter. The
// policy piggybacks on the same reference-count map verifiers see —
// another dividend of exact system-wide refcounts.

// domainKey returns (allocating on first use) the domain's memory
// encryption key. keyMu guards the key table; it is a leaf lock.
func (m *Monitor) domainKey(id DomainID) (hw.KeyID, error) {
	m.keyMu.Lock()
	defer m.keyMu.Unlock()
	if k, ok := m.memKeys[id]; ok {
		return k, nil
	}
	k, err := m.mach.Crypto.AllocKey()
	if err != nil {
		return 0, err
	}
	m.memKeys[id] = k
	return k, nil
}

// syncEncryption retags the whole physical address space from the
// current reference-count map. Called after every capability mutation
// when encryption is on; callers on the shared-lock path serialise the
// engine writes under hwMu.
func (m *Monitor) syncEncryption() error {
	if m.mach.Crypto == nil {
		return nil
	}
	m.hwMu.Lock()
	defer m.hwMu.Unlock()
	for _, rc := range m.space.RefCounts() {
		key := hw.KeyPlaintext
		if rc.Count == 1 {
			owner := DomainID(rc.Owners[0])
			k, err := m.domainKey(owner)
			if err != nil {
				return err
			}
			key = k
		}
		if err := m.mach.Crypto.SetRegionKey(rc.Region, key); err != nil {
			return fmt.Errorf("core: keying %v: %w", rc.Region, err)
		}
	}
	return nil
}

// CryptoErase drops a dead domain's memory encryption key, rendering
// any stale DRAM image of its pages unrecoverable even to a physical
// attacker who captured it before the zeroing cleanup ran.
func (m *Monitor) cryptoErase(id DomainID) {
	if m.mach.Crypto == nil {
		return
	}
	m.keyMu.Lock()
	defer m.keyMu.Unlock()
	if k, ok := m.memKeys[id]; ok {
		m.mach.Crypto.FreeKey(k)
		delete(m.memKeys, id)
	}
}

// MemoryEncryptionActive reports whether the platform encrypts memory.
func (m *Monitor) MemoryEncryptionActive() bool { return m.mach.Crypto != nil }

// DomainKeyID exposes the key a domain's exclusive memory is encrypted
// under (diagnostics; key material never leaves the engine). Takes only
// the leaf key-table lock, never the monitor lock.
func (m *Monitor) DomainKeyID(id DomainID) (hw.KeyID, bool) {
	m.keyMu.Lock()
	defer m.keyMu.Unlock()
	k, ok := m.memKeys[id]
	return k, ok
}
