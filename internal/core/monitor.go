package core

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/tyche-sim/tyche/internal/backend"
	pmpbk "github.com/tyche-sim/tyche/internal/backend/pmp"
	"github.com/tyche-sim/tyche/internal/backend/vtx"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
)

// BackendKind selects the enforcement backend at boot.
type BackendKind string

// Supported backends.
const (
	// BackendVTX is the x86_64 backend: EPT + VMCall + VMFUNC + IOMMU.
	BackendVTX BackendKind = "vtx"
	// BackendPMP is the RISC-V machine-mode backend: per-core PMP.
	BackendPMP BackendKind = "pmp"
)

// DefaultMonitorReserve is the physical memory the monitor keeps for
// itself at the top of the address space (self-protection).
const DefaultMonitorReserve = 1 << 20

// DefaultIdentity is the monitor "binary" measured at boot when the
// caller provides none. Changing the monitor implementation changes
// this blob, and therefore the PCR value remote verifiers compare
// against.
var DefaultIdentity = []byte("tyche-isolation-monitor-go/v1.0 capability-engine=tree refcounts=exact")

// BootConfig describes the platform the monitor boots on.
type BootConfig struct {
	// Machine is the hardware (required).
	Machine *hw.Machine
	// TPM is the root of trust (required).
	TPM *tpm.TPM
	// Backend selects enforcement ("vtx" default).
	Backend BackendKind
	// Identity is the monitor binary measured into the TPM
	// (DefaultIdentity if nil).
	Identity []byte
	// MonitorReserve is the self-protected memory size at the top of
	// RAM (DefaultMonitorReserve if zero).
	MonitorReserve uint64
	// Rand seeds the attestation key (crypto/rand if nil).
	Rand io.Reader
}

// Stats counts monitor-visible events for the experiment harness.
type Stats struct {
	VMExits      uint64 // traps into the monitor (calls, faults routed)
	Transitions  uint64 // mediated domain switches
	FastSwitches uint64
	Syscalls     uint64 // intra-domain ring crossings observed
	CapOps       uint64 // capability mutations via the API
	Revocations  uint64 // revoke operations
	Attests      uint64 // attestation reports produced
	DeniedOps    uint64 // API calls rejected by validation
	IRQsRouted   uint64 // device interrupts delivered by capability
	IRQsDropped  uint64 // interrupts with no capable receiver

	// Fault containment (contain.go).
	MachineChecks uint64 // hardware machine-check traps taken
	ForcedKills   uint64 // domains destroyed by the containment path
	PagesScrubbed uint64 // pages zeroed while reclaiming dead domains
	CoresParked   uint64 // cores taken out of scheduling after a fault
}

// Monitor is the isolation monitor instance controlling one machine.
//
// The monitor is safe for concurrent use: every API entry — Go-level
// calls and guest VMCall traps alike — serialises on one mutex, the
// simulated analogue of the per-core monitor entry lock real monitors
// take on trap (Tyche serialises capability engine operations the same
// way). Guest execution between traps runs without the lock, so cores
// make progress in parallel and only monitor entries contend.
//
// Lock ordering: the monitor lock is taken first, hardware-object locks
// (memory, TLB, EPT, PMP, IOMMU) second, always via downward calls.
// Go-level syscall and IRQ handlers are invoked with the lock released
// — they re-enter the monitor through the public API like any caller.
type Monitor struct {
	mu sync.Mutex

	mach  *hw.Machine
	space *cap.Space
	bk    backend.Backend
	rot   *tpm.TPM

	identity  []byte
	monRegion phys.Region

	domains map[DomainID]*Domain
	nextID  DomainID

	attPriv ed25519.PrivateKey
	attPub  ed25519.PublicKey

	// Per-core call stacks for mediated call/return.
	frames map[phys.CoreID][]DomainID
	// Current domain per core.
	current map[phys.CoreID]DomainID
	// memKeys maps domains to their MKTME keys (empty when the machine
	// has no engine).
	memKeys map[DomainID]hw.KeyID

	stats Stats
}

// Sentinel errors of the monitor API.
var (
	ErrNoSuchDomain = errors.New("core: no such domain")
	ErrDead         = errors.New("core: domain is dead")
	ErrDenied       = errors.New("core: operation denied")
	ErrSealedState  = errors.New("core: domain is sealed")
	ErrNoEntry      = errors.New("core: domain has no entry point")
	ErrNotRunning   = errors.New("core: no domain running on core")
)

// Boot measures and starts the isolation monitor, creating the initial
// domain with every resource except the monitor's reserved memory.
//
// The sequence mirrors §3.4: the TPM measures the boot process (firmware
// then monitor) so that a verifier can later confirm "the machine is
// under the complete control of a specific monitor implementation".
func Boot(cfg BootConfig) (*Monitor, error) {
	if cfg.Machine == nil || cfg.TPM == nil {
		return nil, fmt.Errorf("core: boot requires a machine and a TPM")
	}
	identity := cfg.Identity
	if identity == nil {
		identity = DefaultIdentity
	}
	reserve := cfg.MonitorReserve
	if reserve == 0 {
		reserve = DefaultMonitorReserve
	}
	if reserve%phys.PageSize != 0 || reserve >= cfg.Machine.Mem.Size() {
		return nil, fmt.Errorf("core: invalid monitor reserve %#x", reserve)
	}
	memTop := phys.Addr(cfg.Machine.Mem.Size())
	monRegion := phys.Region{Start: memTop - phys.Addr(reserve), End: memTop}

	m := &Monitor{
		mach:      cfg.Machine,
		space:     cap.NewSpace(),
		rot:       cfg.TPM,
		identity:  append([]byte(nil), identity...),
		monRegion: monRegion,
		domains:   make(map[DomainID]*Domain),
		nextID:    InitialDomain,
		frames:    make(map[phys.CoreID][]DomainID),
		current:   make(map[phys.CoreID]DomainID),
		memKeys:   make(map[DomainID]hw.KeyID),
	}

	// Measured boot: firmware, then the monitor itself (DRTM-style).
	if err := m.rot.Extend(tpm.PCRFirmware, tpm.Measure([]byte("platform-firmware/v1")), "firmware"); err != nil {
		return nil, err
	}
	if err := m.rot.Extend(tpm.PCRMonitor, tpm.Measure(identity), "isolation-monitor"); err != nil {
		return nil, err
	}

	// The monitor's attestation key: generated at boot, bound to the
	// measured boot via TPM quotes (see BootQuote).
	pub, priv, err := ed25519.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("core: generating attestation key: %w", err)
	}
	m.attPub, m.attPriv = pub, priv

	// Enforcement backend.
	switch cfg.Backend {
	case BackendVTX, "":
		m.bk = vtx.New(cfg.Machine, m.space)
	case BackendPMP:
		b, err := pmpbk.New(cfg.Machine, m.space, monRegion)
		if err != nil {
			return nil, err
		}
		m.bk = b
	default:
		return nil, fmt.Errorf("core: unknown backend %q", cfg.Backend)
	}

	// Monitor self-protection: the reserved region belongs to domain 0
	// and is never delegated.
	if _, err := m.space.CreateRoot(cap.OwnerID(MonitorDomain), cap.MemResource(monRegion), cap.MemRW, cap.CleanNone); err != nil {
		return nil, err
	}

	// The monitor owns the IOMMU: deny-by-default from here on.
	m.mach.IOMMU.DefaultAllow = false

	// Initial domain: everything else.
	init := &Domain{id: InitialDomain, name: "dom0", creator: MonitorDomain, state: StateActive}
	m.domains[InitialDomain] = init
	m.nextID = InitialDomain + 1
	owner := cap.OwnerID(InitialDomain)
	if _, err := m.space.CreateRoot(owner, cap.MemResource(phys.Region{Start: 0, End: monRegion.Start}), cap.MemFull, cap.CleanNone); err != nil {
		return nil, err
	}
	for _, c := range m.mach.CoreIDs() {
		if _, err := m.space.CreateRoot(owner, cap.CoreResource(c), cap.CoreFull, cap.CleanNone); err != nil {
			return nil, err
		}
	}
	for _, d := range m.mach.DeviceIDs() {
		if _, err := m.space.CreateRoot(owner, cap.DeviceResource(d), cap.DeviceFull, cap.CleanNone); err != nil {
			return nil, err
		}
	}
	if err := m.bk.InstallDomain(owner); err != nil {
		return nil, err
	}
	if err := m.syncAllDevices(); err != nil {
		return nil, err
	}
	if err := m.syncEncryption(); err != nil {
		return nil, err
	}
	return m, nil
}

// Machine returns the underlying hardware (examples and the OS kit
// drive cores through it; enforcement still applies on every access).
func (m *Monitor) Machine() *hw.Machine { return m.mach }

// Backend returns the enforcement backend's name.
func (m *Monitor) Backend() string { return m.bk.Name() }

// MonitorRegion returns the monitor's self-protected memory.
func (m *Monitor) MonitorRegion() phys.Region { return m.monRegion }

// Stats returns a copy of the monitor's event counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Identity returns the monitor binary that was measured at boot.
func (m *Monitor) Identity() []byte { return append([]byte(nil), m.identity...) }

// AttestationKey returns the monitor's public attestation key.
func (m *Monitor) AttestationKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(m.attPub))
	copy(out, m.attPub)
	return out
}

// Domain returns the domain record for id.
func (m *Monitor) Domain(id DomainID) (*Domain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.domain(id)
}

// domain is Domain with the monitor lock held.
func (m *Monitor) domain(id DomainID) (*Domain, error) {
	d, ok := m.domains[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchDomain, id)
	}
	return d, nil
}

// Domains returns the IDs of all non-dead domains in ascending order.
func (m *Monitor) Domains() []DomainID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []DomainID
	for id := InitialDomain; id < m.nextID; id++ {
		if d, ok := m.domains[id]; ok && d.state != StateDead {
			out = append(out, id)
		}
	}
	return out
}

// liveDomain requires the monitor lock.
func (m *Monitor) liveDomain(id DomainID) (*Domain, error) {
	d, err := m.domain(id)
	if err != nil {
		return nil, err
	}
	if d.state == StateDead {
		return nil, fmt.Errorf("%w: %d", ErrDead, id)
	}
	return d, nil
}

func (m *Monitor) deny(format string, args ...any) error {
	m.stats.DeniedOps++
	return fmt.Errorf("%w: %s", ErrDenied, fmt.Sprintf(format, args...))
}

// CreateDomain creates a new, empty trust domain. Any live domain may
// create children — isolation is not a privileged operation (§3.2:
// "software running in any trust domain can access the isolation
// monitor API").
func (m *Monitor) CreateDomain(caller DomainID, name string) (DomainID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.liveDomain(caller); err != nil {
		return 0, err
	}
	id := m.nextID
	m.nextID++
	d := &Domain{id: id, name: name, creator: caller, state: StateActive}
	m.domains[id] = d
	if err := m.bk.InstallDomain(cap.OwnerID(id)); err != nil {
		delete(m.domains, id)
		return 0, err
	}
	m.emit(trace.KCreate, id, uint64(caller), 0, 0, 0)
	return id, nil
}

// nodeOwnedBy validates that the capability node exists and belongs to
// owner.
func (m *Monitor) nodeOwnedBy(node cap.NodeID, owner DomainID) (cap.Info, error) {
	info, err := m.space.Node(node)
	if err != nil {
		return cap.Info{}, err
	}
	if info.Owner != cap.OwnerID(owner) {
		return cap.Info{}, m.deny("capability %d not owned by domain %d", node, owner)
	}
	return info, nil
}

// Share derives a shared child capability from caller's node for dst.
func (m *Monitor) Share(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup) (cap.NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delegate(caller, node, dst, sub, rights, cleanup, false)
}

// Grant transfers exclusive, revocable control of the sub-resource from
// caller's node to dst.
func (m *Monitor) Grant(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup) (cap.NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delegate(caller, node, dst, sub, rights, cleanup, true)
}

func (m *Monitor) delegate(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup, grant bool) (cap.NodeID, error) {
	op := trace.OpShare
	if grant {
		op = trace.OpGrant
	}
	m.emit(trace.KOpBegin, caller, op, 0, 0, 0)
	defer m.emit(trace.KOpEnd, caller, op, 0, 0, 0)
	if _, err := m.liveDomain(caller); err != nil {
		return 0, err
	}
	if _, err := m.liveDomain(dst); err != nil {
		return 0, err
	}
	if _, err := m.nodeOwnedBy(node, caller); err != nil {
		return 0, err
	}
	var (
		id  cap.NodeID
		err error
	)
	if grant {
		id, err = m.space.Grant(node, cap.OwnerID(dst), sub, rights, cleanup)
	} else {
		id, err = m.space.Share(node, cap.OwnerID(dst), sub, rights, cleanup)
	}
	if err != nil {
		m.stats.DeniedOps++
		return 0, err
	}
	m.stats.CapOps++
	kind := trace.KShare
	if grant {
		kind = trace.KGrant
	}
	var addr, size uint64
	if sub.Kind == cap.ResMemory {
		addr, size = uint64(sub.Mem.Start), sub.Mem.Size()
	}
	m.emit(kind, caller, uint64(dst), uint64(id), addr, size)
	if err := m.syncAfterChange(caller, dst, sub); err != nil {
		return 0, err
	}
	return id, nil
}

// Revoke revokes a capability and its entire derivation subtree. The
// caller must be the delegator (owner of the parent capability) or the
// owner of the node itself (dropping its own access) — "this keeps
// management code in control despite making policy configuration
// available to all software" (§3.2).
func (m *Monitor) Revoke(caller DomainID, node cap.NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.revoke(caller, node)
}

// revoke is Revoke with the monitor lock held (the guest ABI path).
func (m *Monitor) revoke(caller DomainID, node cap.NodeID) error {
	m.emit(trace.KOpBegin, caller, trace.OpRevoke, 0, 0, 0)
	defer m.emit(trace.KOpEnd, caller, trace.OpRevoke, 0, 0, 0)
	if _, err := m.liveDomain(caller); err != nil {
		return err
	}
	info, err := m.space.Node(node)
	if err != nil {
		return err
	}
	authorized := info.Owner == cap.OwnerID(caller)
	if !authorized && info.Parent != 0 {
		if p, err := m.space.Node(info.Parent); err == nil && p.Owner == cap.OwnerID(caller) {
			authorized = true
		}
	}
	if !authorized {
		return m.deny("domain %d may not revoke capability %d", caller, node)
	}
	acts, err := m.space.Revoke(node)
	if err != nil {
		return err
	}
	m.stats.CapOps++
	m.stats.Revocations++
	m.emit(trace.KRevoke, caller, 0, uint64(node), 0, 0)
	return m.afterRevocation(acts, info.Owner)
}

// afterRevocation executes cleanups and resynchronises hardware state
// for every owner whose access changed.
func (m *Monitor) afterRevocation(acts []cap.CleanupAction, alsoSync ...cap.OwnerID) error {
	if err := m.bk.ExecuteCleanups(acts); err != nil {
		return err
	}
	affected := make(map[cap.OwnerID]bool)
	for _, a := range acts {
		affected[a.Owner] = true
	}
	for _, o := range alsoSync {
		affected[o] = true
	}
	for o := range affected {
		if d, ok := m.domains[DomainID(o)]; ok && d.state != StateDead {
			if err := m.bk.SyncDomain(o); err != nil {
				return err
			}
		}
	}
	if err := m.syncAllDevices(); err != nil {
		return err
	}
	return m.syncEncryption()
}

// syncAfterChange refreshes hardware state after a delegation.
func (m *Monitor) syncAfterChange(a, b DomainID, res cap.Resource) error {
	for _, id := range []DomainID{a, b} {
		if err := m.bk.SyncDomain(cap.OwnerID(id)); err != nil {
			return err
		}
	}
	if res.Kind == cap.ResDevice {
		return m.bk.SyncDevice(res.Device)
	}
	// Memory movements can change what DMA-holding domains may reach,
	// and which regions are exclusive (encryption keying).
	if err := m.syncAllDevices(); err != nil {
		return err
	}
	return m.syncEncryption()
}

func (m *Monitor) syncAllDevices() error {
	for _, d := range m.mach.DeviceIDs() {
		if err := m.bk.SyncDevice(d); err != nil {
			return err
		}
	}
	return nil
}

// SetEntry fixes the domain's entry point (§3.1: "domains have a fixed
// entry point"). Only the domain itself or its creator may configure it,
// and only before sealing.
func (m *Monitor) SetEntry(caller, id DomainID, entry phys.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	if d.state == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if !m.space.CheckMemAccess(cap.OwnerID(id), entry, cap.RightExec) {
		return m.deny("entry %v not executable by domain %d", entry, id)
	}
	d.entry = entry
	d.entrySet = true
	return nil
}

// SetEntryRing selects the privilege ring the domain is entered in
// (kernel by default; sandboxes confining untrusted payloads enter in
// ring 3 so the domain's first-level filter applies from the first
// instruction). Same authorization and sealing rules as SetEntry.
func (m *Monitor) SetEntryRing(caller, id DomainID, ring hw.Ring) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	if d.state == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	d.entryRing = ring
	return nil
}

// AddMeasuredRegion marks a region of the domain's memory whose content
// is included in the seal-time measurement.
func (m *Monitor) AddMeasuredRegion(caller, id DomainID, r phys.Region) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	if d.state == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if !m.space.CheckMemAccess(cap.OwnerID(id), r.Start, cap.RightsNone) ||
		!m.space.CheckMemAccess(cap.OwnerID(id), r.End-1, cap.RightsNone) {
		return m.deny("measured region %v outside domain %d's resources", r, id)
	}
	d.measured = append(d.measured, r)
	return nil
}

// Seal freezes the domain's resource set and computes its measurement.
// A sealed domain can no longer receive resources; its attestation
// becomes stable (§3.1).
func (m *Monitor) Seal(caller, id DomainID) (tpm.Digest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seal(caller, id)
}

// seal is Seal with the monitor lock held (the guest ABI path).
func (m *Monitor) seal(caller, id DomainID) (tpm.Digest, error) {
	d, err := m.liveDomain(id)
	if err != nil {
		return tpm.Digest{}, err
	}
	if caller != id && caller != d.creator {
		return tpm.Digest{}, m.deny("domain %d may not seal domain %d", caller, id)
	}
	if d.state == StateSealed {
		return tpm.Digest{}, fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if !d.entrySet {
		return tpm.Digest{}, fmt.Errorf("%w: seal requires an entry point", ErrNoEntry)
	}
	var contents []MeasuredRegion
	for _, r := range phys.NormalizeRegions(d.measured) {
		data, err := m.mach.Mem.View(r)
		if err != nil {
			return tpm.Digest{}, err
		}
		contents = append(contents, MeasuredRegion{Region: r, Content: data})
	}
	d.measurement = ComputeMeasurement(d.entry, contents)
	d.state = StateSealed
	m.space.Seal(cap.OwnerID(id))
	m.stats.CapOps++
	m.emit(trace.KSeal, id, uint64(caller), 0, 0, 0)
	return d.measurement, nil
}

// KillDomain destroys a domain: every capability it holds (and all
// capabilities ever derived from them) is revoked with its cleanup
// policies executed, and its hardware state is removed.
func (m *Monitor) KillDomain(caller, id DomainID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != d.creator && caller != id {
		return m.deny("domain %d may not kill domain %d", caller, id)
	}
	if id == InitialDomain {
		return m.deny("the initial domain cannot be killed")
	}
	return m.destroyDomain(d, false)
}

// Enumerate returns the domain's resources as the attestation would
// list them: effective regions, rights, and system-wide reference
// counts (§3.4: "resource enumeration and reference counts make sharing
// and communication paths between domains explicit").
func (m *Monitor) Enumerate(id DomainID) ([]ResourceRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.liveDomain(id); err != nil {
		return nil, err
	}
	return m.enumerate(cap.OwnerID(id)), nil
}

func (m *Monitor) enumerate(owner cap.OwnerID) []ResourceRecord {
	var out []ResourceRecord
	// One sweep of the reference-count map serves every record (the
	// per-region query is quadratic in enumeration size).
	rcs := m.space.RefCounts()
	maxRef := func(r phys.Region) int {
		max := 0
		for _, rc := range rcs {
			if rc.Region.Overlaps(r) && rc.Count > max {
				max = rc.Count
			}
		}
		return max
	}
	for _, g := range m.space.OwnerMemoryGrants(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.MemResource(g.Region),
			Rights:   g.Rights,
			RefCount: maxRef(g.Region),
		})
	}
	for _, c := range m.space.OwnerCores(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.CoreResource(c),
			Rights:   cap.RightRun,
			RefCount: m.space.CoreRefCount(c),
		})
	}
	for _, dev := range m.space.OwnerDevices(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.DeviceResource(dev),
			Rights:   cap.RightUse,
			RefCount: m.space.DeviceRefCount(dev),
		})
	}
	return out
}

// RefCounts exposes the system-wide memory reference-count map
// (Figure 4).
func (m *Monitor) RefCounts() []cap.RegionCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space.RefCounts()
}

// CapGeneration exposes the capability space's mutation generation —
// every delegation or revocation bumps it, so concurrency tests can
// assert the monitor observed the expected volume of mutations.
func (m *Monitor) CapGeneration() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space.Generation()
}

// LineageTree renders the capability derivation forest (diagnostics).
func (m *Monitor) LineageTree() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space.TreeString()
}

// OwnerNodes lists a domain's capability nodes (for libraries building
// on the API; capabilities are not secret from their owner).
func (m *Monitor) OwnerNodes(id DomainID) []cap.Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space.OwnerNodes(cap.OwnerID(id))
}

// CheckAccess reports whether a domain has effective access at an
// address (diagnostic / test hook; enforcement happens in hardware).
func (m *Monitor) CheckAccess(id DomainID, a phys.Addr, want cap.Rights) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space.CheckMemAccess(cap.OwnerID(id), a, want)
}

// CopyInto writes data into the domain's memory after validating the
// domain holds write access over every touched page. Go-level domain
// logic (the OS kit, libraries, examples) uses this instead of raw
// physical writes so that the capability system is never bypassed.
func (m *Monitor) CopyInto(id DomainID, a phys.Addr, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(id, a, uint64(len(data)), cap.RightWrite); err != nil {
		return err
	}
	return m.mach.Mem.WriteAt(a, data)
}

// CopyFrom reads the domain's memory after validating read access.
func (m *Monitor) CopyFrom(id DomainID, a phys.Addr, n uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(id, a, n, cap.RightRead); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if err := m.mach.Mem.ReadAt(a, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (m *Monitor) checkRange(id DomainID, a phys.Addr, n uint64, want cap.Rights) error {
	if _, err := m.liveDomain(id); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	first := a.PageAlign()
	last := (a + phys.Addr(n) - 1).PageAlign()
	for p := first; ; p += phys.PageSize {
		if !m.space.CheckMemAccess(cap.OwnerID(id), p, want) {
			return m.deny("domain %d lacks %v at %v", id, want, p)
		}
		if p == last {
			break
		}
	}
	return nil
}

// SetReportData binds a domain-chosen digest into the domain's future
// attestation reports (the SGX REPORTDATA analogue). Only the domain
// itself may set it — it is runtime material (e.g. the hash of a
// key-exchange public key), settable even after sealing.
func (m *Monitor) SetReportData(caller, id DomainID, data tpm.Digest) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id {
		return m.deny("only domain %d itself may set its report data", id)
	}
	d.reportData = data
	return nil
}

// SetSyscallHandler installs the Go-level ring-0 trap handler for the
// domain (its "kernel").
func (m *Monitor) SetSyscallHandler(caller, id DomainID, h SyscallHandler) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not install handlers for domain %d", caller, id)
	}
	d.syscall = h
	return nil
}

// DomainContext exposes the domain's per-core execution context to the
// domain's own privileged code (e.g. the OS kit managing its internal
// first-level filter). The monitor-controlled Filter inside it keeps
// enforcing regardless of what the domain does to OSFilter.
func (m *Monitor) DomainContext(caller, id DomainID, core phys.CoreID) (*hw.Context, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return nil, err
	}
	if caller != id && caller != d.creator {
		return nil, m.deny("domain %d may not access domain %d's context", caller, id)
	}
	return m.bk.Context(cap.OwnerID(id), core)
}
