package core

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tyche-sim/tyche/internal/backend"
	pmpbk "github.com/tyche-sim/tyche/internal/backend/pmp"
	"github.com/tyche-sim/tyche/internal/backend/vtx"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
)

// BackendKind selects the enforcement backend at boot.
type BackendKind string

// Supported backends.
const (
	// BackendVTX is the x86_64 backend: EPT + VMCall + VMFUNC + IOMMU.
	BackendVTX BackendKind = "vtx"
	// BackendPMP is the RISC-V machine-mode backend: per-core PMP.
	BackendPMP BackendKind = "pmp"
)

// DefaultMonitorReserve is the physical memory the monitor keeps for
// itself at the top of the address space (self-protection).
const DefaultMonitorReserve = 1 << 20

// DefaultIdentity is the monitor "binary" measured at boot when the
// caller provides none. Changing the monitor implementation changes
// this blob, and therefore the PCR value remote verifiers compare
// against.
var DefaultIdentity = []byte("tyche-isolation-monitor-go/v1.0 capability-engine=tree refcounts=exact")

// BootConfig describes the platform the monitor boots on.
type BootConfig struct {
	// Machine is the hardware (required).
	Machine *hw.Machine
	// TPM is the root of trust (required).
	TPM *tpm.TPM
	// Backend selects enforcement ("vtx" default).
	Backend BackendKind
	// Identity is the monitor binary measured into the TPM
	// (DefaultIdentity if nil).
	Identity []byte
	// MonitorReserve is the self-protected memory size at the top of
	// RAM (DefaultMonitorReserve if zero).
	MonitorReserve uint64
	// Rand seeds the attestation key (crypto/rand if nil).
	Rand io.Reader
}

// Stats counts monitor-visible events for the experiment harness.
type Stats struct {
	VMExits      uint64 // traps into the monitor (calls, faults routed)
	Transitions  uint64 // mediated domain switches
	FastSwitches uint64
	Syscalls     uint64 // intra-domain ring crossings observed
	CapOps       uint64 // capability mutations via the API
	Revocations  uint64 // revoke operations
	Attests      uint64 // attestation reports produced
	DeniedOps    uint64 // API calls rejected by validation
	IRQsRouted   uint64 // device interrupts delivered by capability
	IRQsDropped  uint64 // interrupts with no capable receiver

	// Fault containment (contain.go).
	MachineChecks uint64 // hardware machine-check traps taken
	ForcedKills   uint64 // domains destroyed by the containment path
	PagesScrubbed uint64 // pages zeroed while reclaiming dead domains
	CoresParked   uint64 // cores taken out of scheduling after a fault

	// Multi-tenant scheduling (schedule.go; all zero in dedicated-core
	// mode).
	SchedDispatches  uint64 // vCPU dispatches by the scheduling engine
	SchedPreemptions uint64 // time slices ended by the preemption timer
	SchedYields      uint64 // time slices ended by CallYield
	SchedSteals      uint64 // dispatches that crossed cores (work stealing)
	SchedPurged      uint64 // vCPUs dropped because their domain died
	SchedCompleted   uint64 // vCPUs that ran to completion (halt)
	SchedMaxQueue    uint64 // deepest any single run queue ever got

	// Batched ABI rings (ring.go; all zero until a ring is set up).
	RingOps          uint64 // descriptors executed via submission rings
	RingFlushes      uint64 // non-empty ring drains (batches)
	RingShootdowns   uint64 // coalesced cross-core rounds those drains ran
	RingOpsCoalesced uint64 // logical shootdowns absorbed into those rounds
	RingDrainErrors  uint64 // per-ring drain failures surfaced by barrier drains

	// Parallel reclamation pipeline (drain.go; zero until
	// SetReclaimWorkers enables it).
	RingParallelDrains uint64 // cross-ring parallel drain rounds
	ScrubShards        uint64 // forced-scrub zeroing jobs run on fan-out workers

	// Pre-validated transition cache (transcache.go; opt-in).
	TransCacheHits   uint64 // switches that skipped full validation
	TransCacheMisses uint64 // cached-mode switches that took the slow path

	// Attested live migration (migrate.go).
	MigrationsOut uint64 // domain snapshots captured for departure
	MigrationsIn  uint64 // domains restored (and re-attested) on arrival
}

// statCounters is the monitor's live tally: one atomic per Stats field,
// so counters update without any lock and Stats() snapshots them
// allocation-free.
type statCounters struct {
	vmExits      atomic.Uint64
	transitions  atomic.Uint64
	fastSwitches atomic.Uint64
	syscalls     atomic.Uint64
	capOps       atomic.Uint64
	revocations  atomic.Uint64
	attests      atomic.Uint64
	deniedOps    atomic.Uint64
	irqsRouted   atomic.Uint64
	irqsDropped  atomic.Uint64

	machineChecks atomic.Uint64
	forcedKills   atomic.Uint64
	pagesScrubbed atomic.Uint64
	coresParked   atomic.Uint64

	schedDispatches  atomic.Uint64
	schedPreemptions atomic.Uint64
	schedYields      atomic.Uint64
	schedSteals      atomic.Uint64
	schedPurged      atomic.Uint64
	schedCompleted   atomic.Uint64
	schedMaxQueue    atomic.Uint64

	ringOps          atomic.Uint64
	ringFlushes      atomic.Uint64
	ringShootdowns   atomic.Uint64
	ringOpsCoalesced atomic.Uint64
	ringDrainErrors  atomic.Uint64

	ringParallelDrains atomic.Uint64
	scrubShards        atomic.Uint64

	tcHits   atomic.Uint64
	tcMisses atomic.Uint64

	migrationsOut atomic.Uint64
	migrationsIn  atomic.Uint64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		VMExits:       s.vmExits.Load(),
		Transitions:   s.transitions.Load(),
		FastSwitches:  s.fastSwitches.Load(),
		Syscalls:      s.syscalls.Load(),
		CapOps:        s.capOps.Load(),
		Revocations:   s.revocations.Load(),
		Attests:       s.attests.Load(),
		DeniedOps:     s.deniedOps.Load(),
		IRQsRouted:    s.irqsRouted.Load(),
		IRQsDropped:   s.irqsDropped.Load(),
		MachineChecks: s.machineChecks.Load(),
		ForcedKills:   s.forcedKills.Load(),
		PagesScrubbed: s.pagesScrubbed.Load(),
		CoresParked:   s.coresParked.Load(),

		SchedDispatches:  s.schedDispatches.Load(),
		SchedPreemptions: s.schedPreemptions.Load(),
		SchedYields:      s.schedYields.Load(),
		SchedSteals:      s.schedSteals.Load(),
		SchedPurged:      s.schedPurged.Load(),
		SchedCompleted:   s.schedCompleted.Load(),
		SchedMaxQueue:    s.schedMaxQueue.Load(),

		RingOps:          s.ringOps.Load(),
		RingFlushes:      s.ringFlushes.Load(),
		RingShootdowns:   s.ringShootdowns.Load(),
		RingOpsCoalesced: s.ringOpsCoalesced.Load(),
		RingDrainErrors:  s.ringDrainErrors.Load(),

		RingParallelDrains: s.ringParallelDrains.Load(),
		ScrubShards:        s.scrubShards.Load(),

		TransCacheHits:   s.tcHits.Load(),
		TransCacheMisses: s.tcMisses.Load(),

		MigrationsOut: s.migrationsOut.Load(),
		MigrationsIn:  s.migrationsIn.Load(),
	}
}

// domainTable is the immutable, atomically-published domain index. The
// read path (lookup, liveness via the domain's atomic state, Domains(),
// VMCall dispatch) loads the current table with one atomic pointer read
// and touches no lock. Only domain creation publishes a new table, under
// the exclusive monitor lock; domains are never removed from the table —
// death is a state transition, observed through Domain.State.
type domainTable struct {
	doms   map[DomainID]*Domain
	nextID DomainID
}

// coreSched is one core's scheduling state: the mediated call stack and
// the monitor's notion of the current domain. Each core has its own
// mutex, so transitions on different cores never contend.
type coreSched struct {
	mu     sync.Mutex
	frames []DomainID
	cur    DomainID
	hasCur bool

	// tcache holds this core's pre-validated transitions (transcache.go),
	// consulted only when the monitor's tcOn switch is set. Guarded by mu
	// like the rest of the per-core state; nil until the first fill.
	tcache map[tcKey]tcEntry
}

// Monitor is the isolation monitor instance controlling one machine.
//
// The monitor is safe for concurrent use. Instead of one big lock (the
// PR-1 design, still available under the biglock build tag), state is
// partitioned so the dominant operations run concurrently:
//
//   - Lock-free read path: domain lookup goes through an
//     atomically-published immutable table (tab); liveness is the
//     domain's atomic state; Stats are atomics; capability queries go
//     to the internally-synchronised cap.Space. Stats, Domain, Domains,
//     DomainKeyID, Enumerate, Attest's enumeration+signing, RefCounts,
//     and read-only VMCall dispatch take no monitor lock at all.
//   - The top-level monLock (lk) is a reader/writer lock that every
//     monitor entry now holds SHARED. Entries that rely on the state
//     they read staying reachable — delegations, transitions, seals,
//     copies, IRQ routing, attestation — additionally pin the epoch
//     engine (renter/rexit, epoch.go). The destructive family (Revoke,
//     KillDomain, ForceKill, containFault, ring drains) serialises on
//     revMu and follows the RCU discipline: publish the removal
//     (capability-subtree detach, atomic death state), synchronize
//     (wait for every pre-publish pin to drop), then run the
//     irreversible effects (cleanups, scrub, shootdown, hardware
//     resync, deferred record reclaim). Revocation therefore runs
//     concurrently with lock-free readers; only its publish steps are
//     serialized. Domain creation serialises on tabMu, the only other
//     writer of the published table.
//   - Per-domain mutexes (Domain.mu) guard one domain's mutable record
//     (entry point, measured regions, handlers, log); per-core mutexes
//     (coreSched.mu) guard one core's call stack and serialise
//     transitions on that core; hwMu serialises whole-machine hardware
//     resync (device filters, encryption keying); the capability space
//     shards its own locks per owner (see cap.Space).
//
// Lock order (documented, enforced by construction): lk (shared) →
// revMu / tabMu → coreSched.mu → Domain.mu (two domains in ascending
// DomainID) → hwMu → capability-space locks / hardware-object locks.
// Locks are only ever taken left-to-right; cap and hw locks are leaves,
// never held across calls back into the monitor. ep.synchronize is
// called while holding only lk (shared) + revMu, before any leaf lock,
// so a pinned reader can always finish. Go-level syscall and IRQ
// handlers are invoked with no monitor locks held — they re-enter the
// monitor through the public API like any caller. Under the biglock
// build tag lk is one mutex, no two entries overlap, synchronize never
// waits, and the whole scheme degenerates to stop-the-world.
type Monitor struct {
	lk monLock
	// hwMu serialises global hardware resynchronisation: IOMMU device
	// filters and memory-encryption keying, which read system-wide
	// capability state and write shared hardware objects.
	hwMu sync.Mutex

	// revMu serialises the destructive family — revoke, kill,
	// containment, ring drains — against itself: the single-writer side
	// of the epoch scheme. It nests directly under lk (held shared).
	revMu sync.Mutex
	// tabMu serialises domain creation, the only writer of the
	// published domain table besides boot.
	tabMu sync.Mutex
	// ep is the epoch-based reclamation engine (epoch.go): readers pin,
	// destructive operations synchronize and defer frees.
	ep epochEngine

	mach  *hw.Machine
	space *cap.Space
	bk    backend.Backend
	rot   *tpm.TPM

	identity  []byte
	monRegion phys.Region

	tab atomic.Pointer[domainTable]

	// opTok mints trace-frame tokens: KOpBegin/KOpEnd pairs carry one in
	// their Node field so the checker can match frames that interleave
	// (concurrent delegations under the shared lock).
	opTok atomic.Uint64

	attPriv ed25519.PrivateKey
	attPub  ed25519.PublicKey

	// sched holds per-core scheduling state; the map itself is built at
	// boot and never mutated, so indexing it is lock-free.
	sched map[phys.CoreID]*coreSched

	// memKeys maps domains to their MKTME keys (empty when the machine
	// has no engine), guarded by keyMu.
	keyMu   sync.Mutex
	memKeys map[DomainID]hw.KeyID

	// schedMu guards the opt-in multi-tenant scheduling state below
	// (schedule.go): the installed policy, domains scheduled before the
	// run queue exists, and the persistent run queue itself. It nests
	// under any monitor lock state (destruction purges the queue while
	// holding lk exclusively) and never holds another monitor lock; the
	// Scheduler's own mutex is a leaf below it.
	schedMu  sync.Mutex
	schedPol *sched.Policy
	schedSet []schedStaged
	runq     *sched.Scheduler

	// ringMu guards the submission-ring registry (ring.go). It is a
	// leaf below lk: setup registers under the shared lock, drains and
	// teardown walk it under the exclusive lock. ringCount mirrors
	// len(rings) so the scheduler's round barrier can skip the drain
	// entirely — one atomic load — when no domain ever set a ring up,
	// keeping unbatched runs cycle-identical to pre-ring builds.
	ringMu    sync.Mutex
	rings     map[DomainID]*domainRing
	ringCount atomic.Int64

	// tcOn enables the pre-validated transition cache (transcache.go).
	// Strictly opt-in: default-off keeps every transition byte-for-byte
	// on the pre-cache path.
	tcOn atomic.Bool

	// reclaimWorkers is the parallel reclamation pipeline's fan-out
	// (drain.go): ≤1 keeps ring drains and kill scrubs on the exact
	// serial paths (bit-identical cycle histories — the default); >1
	// lets DrainRings partition rings across that many host workers and
	// fans forced-scrub zeroing out the same way. Strictly opt-in via
	// SetReclaimWorkers, like tcOn.
	reclaimWorkers atomic.Int32

	// drainErrMu/firstDrainErr latch the first per-ring drain failure a
	// barrier drain swallowed, so tests and embedders can observe what
	// Stats().RingDrainErrors only counts.
	drainErrMu    sync.Mutex
	firstDrainErr error

	// checkpoint, when installed (SetCheckpoint), runs at the monitor's
	// quiescent points: scheduler round barriers, ring-drain doorbells,
	// and RunCores completion. The runtime-verification service
	// (internal/rv) registers its shard-merge step here so cross-core
	// trace properties resolve without ever serialising the emit path.
	checkpoint atomic.Pointer[func()]

	// hookDelegatePreEmit, when non-nil, runs inside delegateLocked
	// after the capability mutation and before the trace emit. Test-only
	// (never set outside _test files): the epoch mutation test parks a
	// delegation here to hold its pin open across a concurrent kill.
	hookDelegatePreEmit func(DomainID)

	stats statCounters
}

// Sentinel errors of the monitor API.
var (
	ErrNoSuchDomain = errors.New("core: no such domain")
	ErrDead         = errors.New("core: domain is dead")
	ErrDenied       = errors.New("core: operation denied")
	ErrSealedState  = errors.New("core: domain is sealed")
	ErrNoEntry      = errors.New("core: domain has no entry point")
	ErrNotRunning   = errors.New("core: no domain running on core")
)

// Boot measures and starts the isolation monitor, creating the initial
// domain with every resource except the monitor's reserved memory.
//
// The sequence mirrors §3.4: the TPM measures the boot process (firmware
// then monitor) so that a verifier can later confirm "the machine is
// under the complete control of a specific monitor implementation".
func Boot(cfg BootConfig) (*Monitor, error) {
	if cfg.Machine == nil || cfg.TPM == nil {
		return nil, fmt.Errorf("core: boot requires a machine and a TPM")
	}
	identity := cfg.Identity
	if identity == nil {
		identity = DefaultIdentity
	}
	reserve := cfg.MonitorReserve
	if reserve == 0 {
		reserve = DefaultMonitorReserve
	}
	if reserve%phys.PageSize != 0 || reserve >= cfg.Machine.Mem.Size() {
		return nil, fmt.Errorf("core: invalid monitor reserve %#x", reserve)
	}
	memTop := phys.Addr(cfg.Machine.Mem.Size())
	monRegion := phys.Region{Start: memTop - phys.Addr(reserve), End: memTop}

	m := &Monitor{
		mach:      cfg.Machine,
		space:     cap.NewSpace(),
		rot:       cfg.TPM,
		identity:  append([]byte(nil), identity...),
		monRegion: monRegion,
		sched:     make(map[phys.CoreID]*coreSched),
		memKeys:   make(map[DomainID]hw.KeyID),
		rings:     make(map[DomainID]*domainRing),
	}
	for _, c := range m.mach.CoreIDs() {
		m.sched[c] = &coreSched{}
	}
	m.ep.init()

	// Measured boot: firmware, then the monitor itself (DRTM-style).
	if err := m.rot.Extend(tpm.PCRFirmware, tpm.Measure([]byte("platform-firmware/v1")), "firmware"); err != nil {
		return nil, err
	}
	if err := m.rot.Extend(tpm.PCRMonitor, tpm.Measure(identity), "isolation-monitor"); err != nil {
		return nil, err
	}

	// The monitor's attestation key: generated at boot, bound to the
	// measured boot via TPM quotes (see BootQuote).
	pub, priv, err := ed25519.GenerateKey(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("core: generating attestation key: %w", err)
	}
	m.attPub, m.attPriv = pub, priv

	// Enforcement backend.
	switch cfg.Backend {
	case BackendVTX, "":
		m.bk = vtx.New(cfg.Machine, m.space)
	case BackendPMP:
		b, err := pmpbk.New(cfg.Machine, m.space, monRegion)
		if err != nil {
			return nil, err
		}
		m.bk = b
	default:
		return nil, fmt.Errorf("core: unknown backend %q", cfg.Backend)
	}

	// Monitor self-protection: the reserved region belongs to domain 0
	// and is never delegated.
	if _, err := m.space.CreateRoot(cap.OwnerID(MonitorDomain), cap.MemResource(monRegion), cap.MemRW, cap.CleanNone); err != nil {
		return nil, err
	}

	// The monitor owns the IOMMU: deny-by-default from here on.
	m.mach.IOMMU.DefaultAllow = false

	// Initial domain: everything else.
	init := &Domain{id: InitialDomain, name: "dom0", creator: MonitorDomain}
	m.tab.Store(&domainTable{
		doms:   map[DomainID]*Domain{InitialDomain: init},
		nextID: InitialDomain + 1,
	})
	owner := cap.OwnerID(InitialDomain)
	if _, err := m.space.CreateRoot(owner, cap.MemResource(phys.Region{Start: 0, End: monRegion.Start}), cap.MemFull, cap.CleanNone); err != nil {
		return nil, err
	}
	for _, c := range m.mach.CoreIDs() {
		if _, err := m.space.CreateRoot(owner, cap.CoreResource(c), cap.CoreFull, cap.CleanNone); err != nil {
			return nil, err
		}
	}
	for _, d := range m.mach.DeviceIDs() {
		if _, err := m.space.CreateRoot(owner, cap.DeviceResource(d), cap.DeviceFull, cap.CleanNone); err != nil {
			return nil, err
		}
	}
	if err := m.bk.InstallDomain(owner); err != nil {
		return nil, err
	}
	if err := m.syncAllDevices(); err != nil {
		return nil, err
	}
	if err := m.syncEncryption(); err != nil {
		return nil, err
	}
	return m, nil
}

// Machine returns the underlying hardware (examples and the OS kit
// drive cores through it; enforcement still applies on every access).
func (m *Monitor) Machine() *hw.Machine { return m.mach }

// Backend returns the enforcement backend's name.
func (m *Monitor) Backend() string { return m.bk.Name() }

// MonitorRegion returns the monitor's self-protected memory.
func (m *Monitor) MonitorRegion() phys.Region { return m.monRegion }

// Stats returns an allocation-free snapshot of the monitor's event
// counters: every field is one atomic load. Each field is individually
// exact, but since the revocation family now runs under the shared
// lock too (epoch scheme), a snapshot may land between the
// logically-paired counter updates of an in-flight revoke — e.g. see
// CapOps already incremented but Revocations not yet. The tearing is
// bounded by the number of in-flight operations and resolves as soon
// as they retire; quiescent snapshots are exact. Delegations,
// transitions, and revocations are never blocked by a Stats reader.
func (m *Monitor) Stats() Stats {
	m.lk.rlock()
	defer m.lk.runlock()
	return m.stats.snapshot()
}

// LockWait returns the cumulative wall time monitor entries spent
// blocked acquiring the top-level monitor lock and the number of
// acquisitions — the contention signal C18 reports as wait share. The
// accounting is wall-clock only and never advances simulated cycles.
func (m *Monitor) LockWait() (time.Duration, uint64) { return m.lk.wait() }

// SetCheckpoint installs fn (nil removes it) to run at the monitor's
// quiescent points: every scheduler round barrier, every ring-drain
// doorbell, and RunCores completion. It is the hook the runtime-
// verification service (internal/rv) uses to merge its shard checkers
// where cross-core state is naturally settled. fn must be fast, must
// not call back into the monitor, and must never advance simulated
// cycles — checkpoints are host-side work, invisible to the cycle
// clock, which is what keeps cycle histories bit-identical with
// verification on or off.
func (m *Monitor) SetCheckpoint(fn func()) {
	if fn == nil {
		m.checkpoint.Store(nil)
		return
	}
	m.checkpoint.Store(&fn)
}

// runCheckpoint fires the installed checkpoint hook, if any: one
// atomic load on the (default) uninstalled path.
func (m *Monitor) runCheckpoint() {
	if f := m.checkpoint.Load(); f != nil {
		(*f)()
	}
}

// Identity returns the monitor binary that was measured at boot.
func (m *Monitor) Identity() []byte { return append([]byte(nil), m.identity...) }

// AttestationKey returns the monitor's public attestation key.
func (m *Monitor) AttestationKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(m.attPub))
	copy(out, m.attPub)
	return out
}

// Domain returns the domain record for id. Lock-free: the record comes
// from the published domain table.
func (m *Monitor) Domain(id DomainID) (*Domain, error) {
	return m.domain(id)
}

// domain looks id up in the published table (lock-free).
func (m *Monitor) domain(id DomainID) (*Domain, error) {
	d, ok := m.tab.Load().doms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchDomain, id)
	}
	return d, nil
}

// Domains returns the IDs of all non-dead domains in ascending order,
// read from the published snapshot without taking any lock.
func (m *Monitor) Domains() []DomainID {
	tab := m.tab.Load()
	var out []DomainID
	for id := InitialDomain; id < tab.nextID; id++ {
		if d, ok := tab.doms[id]; ok && d.State() != StateDead {
			out = append(out, id)
		}
	}
	return out
}

// liveDomain resolves id to a live domain (lock-free). Liveness is a
// moment-in-time fact: a concurrent kill may publish death right after
// this returns. Callers that act on the answer hold an epoch pin, so
// the kill's irreversible effects (scrub, reclaim, KKill) wait for
// them to finish — the operation linearizes before the kill.
func (m *Monitor) liveDomain(id DomainID) (*Domain, error) {
	d, err := m.domain(id)
	if err != nil {
		return nil, err
	}
	if d.State() == StateDead {
		return nil, fmt.Errorf("%w: %d", ErrDead, id)
	}
	return d, nil
}

func (m *Monitor) deny(format string, args ...any) error {
	m.stats.deniedOps.Add(1)
	return fmt.Errorf("%w: %s", ErrDenied, fmt.Sprintf(format, args...))
}

// CreateDomain creates a new, empty trust domain. Any live domain may
// create children — isolation is not a privileged operation (§3.2:
// "software running in any trust domain can access the isolation
// monitor API").
//
// Creation publishes a new domain table under tabMu — it no longer
// stalls readers or the destructive family. The epoch pin orders the
// KCreate emit before any concurrent kill of the creator retires.
func (m *Monitor) CreateDomain(caller DomainID, name string) (DomainID, error) {
	p := m.renter()
	defer m.rexit(p)
	m.tabMu.Lock()
	defer m.tabMu.Unlock()
	if _, err := m.liveDomain(caller); err != nil {
		return 0, err
	}
	old := m.tab.Load()
	id := old.nextID
	d := &Domain{id: id, name: name, creator: caller}
	if err := m.bk.InstallDomain(cap.OwnerID(id)); err != nil {
		return 0, err
	}
	doms := make(map[DomainID]*Domain, len(old.doms)+1)
	for k, v := range old.doms {
		doms[k] = v
	}
	doms[id] = d
	m.tab.Store(&domainTable{doms: doms, nextID: id + 1})
	m.emit(trace.KCreate, id, uint64(caller), 0, 0, 0)
	return id, nil
}

// nodeOwnedBy validates that the capability node exists and belongs to
// owner.
func (m *Monitor) nodeOwnedBy(node cap.NodeID, owner DomainID) (cap.Info, error) {
	info, err := m.space.Node(node)
	if err != nil {
		return cap.Info{}, err
	}
	if info.Owner != cap.OwnerID(owner) {
		return cap.Info{}, m.deny("capability %d not owned by domain %d", node, owner)
	}
	return info, nil
}

// Share derives a shared child capability from caller's node for dst.
func (m *Monitor) Share(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup) (cap.NodeID, error) {
	return m.delegate(caller, node, dst, sub, rights, cleanup, false)
}

// Grant transfers exclusive, revocable control of the sub-resource from
// caller's node to dst.
func (m *Monitor) Grant(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup) (cap.NodeID, error) {
	return m.delegate(caller, node, dst, sub, rights, cleanup, true)
}

// delegate validates and performs one Share or Grant. It is an epoch-
// pinned reader entry: the capability space provides its own per-owner
// locking for the mutation, and hardware resync is serialised per
// affected domain. Two delegations between disjoint domain pairs run
// fully in parallel. A kill racing the delegation either loses the
// liveness check (it published death first) or waits out the pin in
// its grace period — in which case the delegated capability is part of
// the subtree its DetachOwner then revokes.
func (m *Monitor) delegate(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup, grant bool) (cap.NodeID, error) {
	p := m.renter()
	defer m.rexit(p)
	return m.delegateLocked(caller, node, dst, sub, rights, cleanup, grant)
}

// delegateLocked is delegate with a monitor entry already held (a
// pinned reader entry from the public wrappers, the destructive entry
// on the ring drain path — the locks are not reentrant, so batch
// execution needs this entry point).
func (m *Monitor) delegateLocked(caller DomainID, node cap.NodeID, dst DomainID, sub cap.Resource, rights cap.Rights, cleanup cap.Cleanup, grant bool) (cap.NodeID, error) {
	op := trace.OpShare
	if grant {
		op = trace.OpGrant
	}
	tok := m.opTok.Add(1)
	m.emit(trace.KOpBegin, caller, op, tok, 0, 0)
	defer m.emit(trace.KOpEnd, caller, op, tok, 0, 0)
	if _, err := m.liveDomain(caller); err != nil {
		return 0, err
	}
	dd, err := m.liveDomain(dst)
	if err != nil {
		return 0, err
	}
	if _, err := m.nodeOwnedBy(node, caller); err != nil {
		return 0, err
	}
	var id cap.NodeID
	if grant {
		id, err = m.space.Grant(node, cap.OwnerID(dst), sub, rights, cleanup)
	} else {
		id, err = m.space.Share(node, cap.OwnerID(dst), sub, rights, cleanup)
	}
	if err != nil {
		m.stats.deniedOps.Add(1)
		return 0, err
	}
	m.stats.capOps.Add(1)
	if m.hookDelegatePreEmit != nil {
		m.hookDelegatePreEmit(dst)
	}
	kind := trace.KShare
	if grant {
		kind = trace.KGrant
	}
	var addr, size uint64
	if sub.Kind == cap.ResMemory {
		addr, size = uint64(sub.Mem.Start), sub.Mem.Size()
	}
	m.emit(kind, caller, uint64(dst), uint64(id), addr, size)
	cd, _ := m.domain(caller)
	if err := m.syncAfterChange(cd, dd, sub); err != nil {
		return 0, err
	}
	return id, nil
}

// Revoke revokes a capability and its entire derivation subtree. The
// caller must be the delegator (owner of the parent capability) or the
// owner of the node itself (dropping its own access) — "this keeps
// management code in control despite making policy configuration
// available to all software" (§3.2).
func (m *Monitor) Revoke(caller DomainID, node cap.NodeID) error {
	m.denter()
	defer m.dexit()
	return m.revoke(caller, node)
}

// revoke is Revoke with the destructive-family entry held (rlock +
// revMu — the guest ABI and ring drain paths share it). Revocation no
// longer stops the world; it follows the epoch discipline:
//
//	publish  — Detach removes the subtree from the capability index in
//	           one short structural critical section. New readers stop
//	           seeing the capabilities; grant suspensions persist, so
//	           the parents cannot re-delegate the regions yet.
//	quiesce  — synchronize waits out every reader that could have
//	           validated access before the detach. After it returns,
//	           no check-then-act entry still relies on revoked state.
//	reclaim  — cleanups (zero/flush + shootdowns) scrub the revoked
//	           state, Release hands the parents their access back,
//	           affected hardware is resynchronised, and the detached
//	           records go to the deferred-free list.
//
// The KOpBegin/KOpEnd frame brackets all of it, so the trace checker's
// shootdown-ack-inside-frame and scrub ordering invariants hold
// unchanged.
func (m *Monitor) revoke(caller DomainID, node cap.NodeID) error {
	tok := m.opTok.Add(1)
	m.emit(trace.KOpBegin, caller, trace.OpRevoke, tok, 0, 0)
	defer m.emit(trace.KOpEnd, caller, trace.OpRevoke, tok, 0, 0)
	if _, err := m.liveDomain(caller); err != nil {
		return err
	}
	info, err := m.space.Node(node)
	if err != nil {
		return err
	}
	authorized := info.Owner == cap.OwnerID(caller)
	if !authorized && info.Parent != 0 {
		if p, err := m.space.Node(info.Parent); err == nil && p.Owner == cap.OwnerID(caller) {
			authorized = true
		}
	}
	if !authorized {
		return m.deny("domain %d may not revoke capability %d", caller, node)
	}
	det, err := m.space.Detach(node)
	if err != nil {
		return err
	}
	m.stats.capOps.Add(1)
	m.stats.revocations.Add(1)
	m.emit(trace.KRevoke, caller, 0, uint64(node), 0, 0)
	m.ep.synchronize()
	if err := m.bk.ExecuteCleanups(det.Actions()); err != nil {
		return err
	}
	m.space.Release(det)
	alsoSync := append(det.ParentOwners(), info.Owner)
	if err := m.resyncAfterRevocation(det.Actions(), alsoSync...); err != nil {
		return err
	}
	m.ep.deferFree(func() { m.space.Reclaim(det) })
	return nil
}

// resyncAfterRevocation reprograms hardware state for every owner whose
// access changed. Destructive-family entry held — not exclusive — so
// each per-domain filter rebuild takes Domain.mu, exactly like the
// delegation path's syncAfterChange, keeping rebuilds for one domain
// serialised against concurrent delegations.
func (m *Monitor) resyncAfterRevocation(acts []cap.CleanupAction, alsoSync ...cap.OwnerID) error {
	affected := make(map[cap.OwnerID]bool)
	for _, a := range acts {
		affected[a.Owner] = true
	}
	for _, o := range alsoSync {
		affected[o] = true
	}
	tab := m.tab.Load()
	for o := range affected {
		if d, ok := tab.doms[DomainID(o)]; ok && d.State() != StateDead {
			d.mu.Lock()
			err := m.bk.SyncDomain(o)
			d.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	if err := m.syncAllDevices(); err != nil {
		return err
	}
	return m.syncEncryption()
}

// syncAfterChange refreshes hardware state after a delegation (pinned
// reader entry held). Domain filter rebuilds are serialised per domain
// by Domain.mu — taken one at a time, never as a held pair, so rings of
// delegating domains cannot convoy. Concurrent delegations touching the
// same domain are safe: each rebuild reads the capability space at
// rebuild time, so the last one to run sees (at least) all mutations
// committed before it. Revocations take Domain.mu for their rebuilds
// too (resyncAfterRevocation), and their scrub/reclaim effects wait out
// this entry's epoch pin, so a rebuild never reprograms a filter from
// state that is mid-reclaim.
func (m *Monitor) syncAfterChange(a, b *Domain, res cap.Resource) error {
	doms := []*Domain{a, b}
	if a == b {
		doms = doms[:1]
	}
	for _, d := range doms {
		d.mu.Lock()
		err := m.bk.SyncDomain(cap.OwnerID(d.id))
		d.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if res.Kind == cap.ResDevice {
		m.hwMu.Lock()
		defer m.hwMu.Unlock()
		return m.bk.SyncDevice(res.Device)
	}
	// Memory movements can change what DMA-holding domains may reach,
	// and which regions are exclusive (encryption keying). Only devices
	// whose DMA holders include an affected domain can have changed —
	// scoped, so delegations between device-less domains skip the
	// global hardware lock entirely.
	if err := m.syncDevicesFor(a.id, b.id); err != nil {
		return err
	}
	return m.syncEncryption()
}

// syncDevicesFor reprograms the IOMMU context of every device whose
// DMA-holder set intersects the given domains.
func (m *Monitor) syncDevicesFor(ids ...DomainID) error {
	intersects := func(holders []cap.OwnerID) bool {
		for _, h := range holders {
			for _, id := range ids {
				if h == cap.OwnerID(id) {
					return true
				}
			}
		}
		return false
	}
	var affected []phys.DeviceID
	for _, dev := range m.mach.DeviceIDs() {
		if intersects(m.space.DeviceDMAHolders(dev)) {
			affected = append(affected, dev)
		}
	}
	if len(affected) == 0 {
		return nil
	}
	m.hwMu.Lock()
	defer m.hwMu.Unlock()
	for _, dev := range affected {
		if err := m.bk.SyncDevice(dev); err != nil {
			return err
		}
	}
	return nil
}

func (m *Monitor) syncAllDevices() error {
	m.hwMu.Lock()
	defer m.hwMu.Unlock()
	for _, d := range m.mach.DeviceIDs() {
		if err := m.bk.SyncDevice(d); err != nil {
			return err
		}
	}
	return nil
}

// SetEntry fixes the domain's entry point (§3.1: "domains have a fixed
// entry point"). Only the domain itself or its creator may configure it,
// and only before sealing.
func (m *Monitor) SetEntry(caller, id DomainID, entry phys.Addr) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.State() == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if !m.space.CheckMemAccess(cap.OwnerID(id), entry, cap.RightExec) {
		return m.deny("entry %v not executable by domain %d", entry, id)
	}
	d.entry = entry
	d.entrySet = true
	d.bumpCfgGen()
	return nil
}

// SetEntryRing selects the privilege ring the domain is entered in
// (kernel by default; sandboxes confining untrusted payloads enter in
// ring 3 so the domain's first-level filter applies from the first
// instruction). Same authorization and sealing rules as SetEntry.
func (m *Monitor) SetEntryRing(caller, id DomainID, ring hw.Ring) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.State() == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	d.entryRing = ring
	d.bumpCfgGen()
	return nil
}

// AddMeasuredRegion marks a region of the domain's memory whose content
// is included in the seal-time measurement.
func (m *Monitor) AddMeasuredRegion(caller, id DomainID, r phys.Region) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not configure domain %d", caller, id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.State() == StateSealed {
		return fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if !m.space.CheckMemAccess(cap.OwnerID(id), r.Start, cap.RightsNone) ||
		!m.space.CheckMemAccess(cap.OwnerID(id), r.End-1, cap.RightsNone) {
		return m.deny("measured region %v outside domain %d's resources", r, id)
	}
	d.measured = append(d.measured, r)
	return nil
}

// Seal freezes the domain's resource set and computes its measurement.
// A sealed domain can no longer receive resources; its attestation
// becomes stable (§3.1).
func (m *Monitor) Seal(caller, id DomainID) (tpm.Digest, error) {
	p := m.renter()
	defer m.rexit(p)
	return m.seal(caller, id)
}

// seal is Seal with the shared monitor lock held (the guest ABI path).
// The domain mutex serialises it against concurrent configuration of
// the same domain; the capability space orders the seal against
// in-flight delegations to the domain on its owner shard.
func (m *Monitor) seal(caller, id DomainID) (tpm.Digest, error) {
	d, err := m.liveDomain(id)
	if err != nil {
		return tpm.Digest{}, err
	}
	if caller != id && caller != d.creator {
		return tpm.Digest{}, m.deny("domain %d may not seal domain %d", caller, id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.State() == StateSealed {
		return tpm.Digest{}, fmt.Errorf("%w: %d", ErrSealedState, id)
	}
	if !d.entrySet {
		return tpm.Digest{}, fmt.Errorf("%w: seal requires an entry point", ErrNoEntry)
	}
	var contents []MeasuredRegion
	for _, r := range phys.NormalizeRegions(d.measured) {
		data, err := m.mach.Mem.View(r)
		if err != nil {
			return tpm.Digest{}, err
		}
		contents = append(contents, MeasuredRegion{Region: r, Content: data})
	}
	d.measurement = ComputeMeasurement(d.entry, contents)
	d.setState(StateSealed)
	d.bumpCfgGen()
	m.space.Seal(cap.OwnerID(id))
	m.stats.capOps.Add(1)
	m.emit(trace.KSeal, id, uint64(caller), 0, 0, 0)
	return d.measurement, nil
}

// KillDomain destroys a domain: every capability it holds (and all
// capabilities ever derived from them) is revoked with its cleanup
// policies executed, and its hardware state is removed.
func (m *Monitor) KillDomain(caller, id DomainID) error {
	m.denter()
	defer m.dexit()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != d.creator && caller != id {
		return m.deny("domain %d may not kill domain %d", caller, id)
	}
	if id == InitialDomain {
		return m.deny("the initial domain cannot be killed")
	}
	return m.destroyDomain(d, false)
}

// Enumerate returns the domain's resources as the attestation would
// list them: effective regions, rights, and system-wide reference
// counts (§3.4: "resource enumeration and reference counts make sharing
// and communication paths between domains explicit"). Lock-free: every
// query goes to the internally-synchronised capability space. Each
// record is individually consistent; a concurrent delegation may land
// between records, exactly as it may land right after Enumerate
// returns.
func (m *Monitor) Enumerate(id DomainID) ([]ResourceRecord, error) {
	if _, err := m.liveDomain(id); err != nil {
		return nil, err
	}
	return m.enumerate(cap.OwnerID(id)), nil
}

func (m *Monitor) enumerate(owner cap.OwnerID) []ResourceRecord {
	var out []ResourceRecord
	// One sweep of the reference-count map serves every record (the
	// per-region query is quadratic in enumeration size).
	rcs := m.space.RefCounts()
	maxRef := func(r phys.Region) int {
		max := 0
		for _, rc := range rcs {
			if rc.Region.Overlaps(r) && rc.Count > max {
				max = rc.Count
			}
		}
		return max
	}
	for _, g := range m.space.OwnerMemoryGrants(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.MemResource(g.Region),
			Rights:   g.Rights,
			RefCount: maxRef(g.Region),
		})
	}
	for _, c := range m.space.OwnerCores(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.CoreResource(c),
			Rights:   cap.RightRun,
			RefCount: m.space.CoreRefCount(c),
		})
	}
	for _, dev := range m.space.OwnerDevices(owner) {
		out = append(out, ResourceRecord{
			Resource: cap.DeviceResource(dev),
			Rights:   cap.RightUse,
			RefCount: m.space.DeviceRefCount(dev),
		})
	}
	return out
}

// RefCounts exposes the system-wide memory reference-count map
// (Figure 4). Lock-free at the monitor level.
func (m *Monitor) RefCounts() []cap.RegionCount {
	return m.space.RefCounts()
}

// CapGeneration exposes the capability space's mutation generation —
// every delegation or revocation bumps it, so concurrency tests can
// assert the monitor observed the expected volume of mutations.
func (m *Monitor) CapGeneration() uint64 {
	return m.space.Generation()
}

// LineageTree renders the capability derivation forest (diagnostics).
func (m *Monitor) LineageTree() string {
	return m.space.TreeString()
}

// OwnerNodes lists a domain's capability nodes (for libraries building
// on the API; capabilities are not secret from their owner).
func (m *Monitor) OwnerNodes(id DomainID) []cap.Info {
	return m.space.OwnerNodes(cap.OwnerID(id))
}

// CheckAccess reports whether a domain has effective access at an
// address (diagnostic / test hook; enforcement happens in hardware).
func (m *Monitor) CheckAccess(id DomainID, a phys.Addr, want cap.Rights) bool {
	return m.space.CheckMemAccess(cap.OwnerID(id), a, want)
}

// CopyInto writes data into the domain's memory after validating the
// domain holds write access over every touched page. Go-level domain
// logic (the OS kit, libraries, examples) uses this instead of raw
// physical writes so that the capability system is never bypassed.
// The epoch pin keeps the check-then-copy atomic against revocation:
// a concurrent revoke's scrub and reclaim wait out the pin, so a copy
// that validated access never lands on already-scrubbed memory.
func (m *Monitor) CopyInto(id DomainID, a phys.Addr, data []byte) error {
	p := m.renter()
	defer m.rexit(p)
	if err := m.checkRange(id, a, uint64(len(data)), cap.RightWrite); err != nil {
		return err
	}
	return m.mach.Mem.WriteAt(a, data)
}

// CopyFrom reads the domain's memory after validating read access.
func (m *Monitor) CopyFrom(id DomainID, a phys.Addr, n uint64) ([]byte, error) {
	p := m.renter()
	defer m.rexit(p)
	if err := m.checkRange(id, a, n, cap.RightRead); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if err := m.mach.Mem.ReadAt(a, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (m *Monitor) checkRange(id DomainID, a phys.Addr, n uint64, want cap.Rights) error {
	if _, err := m.liveDomain(id); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	first := a.PageAlign()
	last := (a + phys.Addr(n) - 1).PageAlign()
	for p := first; ; p += phys.PageSize {
		if !m.space.CheckMemAccess(cap.OwnerID(id), p, want) {
			return m.deny("domain %d lacks %v at %v", id, want, p)
		}
		if p == last {
			break
		}
	}
	return nil
}

// SetReportData binds a domain-chosen digest into the domain's future
// attestation reports (the SGX REPORTDATA analogue). Only the domain
// itself may set it — it is runtime material (e.g. the hash of a
// key-exchange public key), settable even after sealing.
func (m *Monitor) SetReportData(caller, id DomainID, data tpm.Digest) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id {
		return m.deny("only domain %d itself may set its report data", id)
	}
	d.mu.Lock()
	d.reportData = data
	d.mu.Unlock()
	return nil
}

// SetSyscallHandler installs the Go-level ring-0 trap handler for the
// domain (its "kernel").
func (m *Monitor) SetSyscallHandler(caller, id DomainID, h SyscallHandler) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not install handlers for domain %d", caller, id)
	}
	d.mu.Lock()
	d.syscall = h
	d.mu.Unlock()
	return nil
}

// DomainContext exposes the domain's per-core execution context to the
// domain's own privileged code (e.g. the OS kit managing its internal
// first-level filter). The monitor-controlled Filter inside it keeps
// enforcing regardless of what the domain does to OSFilter.
func (m *Monitor) DomainContext(caller, id DomainID, core phys.CoreID) (*hw.Context, error) {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return nil, err
	}
	if caller != id && caller != d.creator {
		return nil, m.deny("domain %d may not access domain %d's context", caller, id)
	}
	return m.bk.Context(cap.OwnerID(id), core)
}
