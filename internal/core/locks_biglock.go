//go:build biglock

package core

import (
	"sync"
	"time"
)

// BigLockBuild reports whether this binary was built with the biglock
// tag. This file restores the PR-1 behaviour for A/B comparison: every
// monitor entry that takes the top-level lock — shared in the epoch
// build — serialises on one mutex. The epoch machinery degenerates
// cleanly: with all entries serialised there is never a concurrent
// reader pin, so ep.synchronize returns without waiting and the
// publish → quiesce → reclaim sequence becomes plain stop-the-world
// teardown on one code path. The inner layers (per-domain mutexes,
// per-core scheduling locks, the sharded capability space) are
// identical in both builds; they are simply uncontended here, so the
// A/B difference isolates the concurrency policy. Cycle charging is
// shared code, so single-core cycle counts are bit-identical across
// builds.
const BigLockBuild = true

// monLock is the monitor's top-level lock: one mutex, with rlock and
// wlock both exclusive.
type monLock struct {
	mu     sync.Mutex
	waitNs atomicInt64
	acqs   atomicUint64
}

func (l *monLock) rlock() {
	start := time.Now()
	l.mu.Lock()
	l.account(start)
}

func (l *monLock) runlock() { l.mu.Unlock() }

func (l *monLock) wlock() {
	start := time.Now()
	l.mu.Lock()
	l.account(start)
}

func (l *monLock) wunlock() { l.mu.Unlock() }
