//go:build epochbug

package core

// EpochBugArmed: this binary was built with the epochbug tag — the
// epoch engine's synchronize returns without waiting for readers and
// deferred frees run immediately. A deliberately broken build: the
// mutation test proves the trace checker catches the premature reclaim
// (dead-domain silence violated by a reader that outlives the kill).
const EpochBugArmed = true
