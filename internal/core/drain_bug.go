//go:build !drainbug

package core

// DrainBugArmed reports whether this binary carries the seeded
// coalescing bug (the drainbug build tag): the parallel drain round's
// first deferred revocation runs its flush cleanups OUTSIDE the round's
// shootdown accumulator, so extra unbatched shootdown rounds appear
// inside the KDrainBegin/KDrainEnd frame. Mirrors the tracebug /
// epochbug / scrubbug pattern: the mutation test proves the checker's
// cross-ring coalescing property rejects the bug, which is what
// licenses shipping the parallel pipeline.
const DrainBugArmed = false
