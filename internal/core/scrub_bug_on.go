//go:build scrubbug

package core

// Seeded mutation build: domain destruction announces its scrub plan
// but skips the first exclusive region's zero+shootdown, completing
// the kill with secrets still readable in supposedly-reclaimed
// memory. This exists to prove the trace checkers' scrub-before-kill
// property is not vacuous — see TestScrubMutationOracle. Never ship
// with this tag.

// ScrubBugArmed reports whether the seeded scrub-skip mutation is
// compiled in.
const ScrubBugArmed = true

const scrubSkipFirst = true
