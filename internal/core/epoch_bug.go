//go:build !epochbug

package core

// EpochBugArmed reports whether this binary carries the seeded
// premature-reclaim bug (the epochbug build tag): synchronize skips its
// grace period and deferred frees run immediately, so a destructive
// operation can reclaim state while a reader still uses it. Mirrors the
// hw tracebug pattern: the mutation test proves the trace checker
// rejects the bug, which is what licenses shipping the epoch scheme.
const EpochBugArmed = false
