//go:build !migratebug

package core

// MigrateBugArmed reports whether this binary carries the seeded
// migration-departure bug (the migratebug build tag): DepartKill — the
// source-side crypto-erase of an attested live migration — announces
// its scrub plan but elides the zeroing, the TLB shootdowns, and the
// encryption-key drop, so a "departed" confidential workload leaves a
// readable plaintext copy behind on the source machine. The mutation
// test proves both the serial and the sharded trace checkers flag the
// unscrubbed regions (scrub-before-kill property), which is what
// licenses trusting the migration departure path.
const MigrateBugArmed = false

// departEraseElided makes destroyReclaim skip the departure-side
// erase. Constant-false in normal builds so the branch folds away.
const departEraseElided = false
