package core

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// attachDualCheckers installs one tracer feeding BOTH the serial
// checker (ordinary sink) and the sharded incremental checker
// (per-ring shard sink) on an already-booted monitor. Every mutation
// oracle runs through this so a seeded bug must be rejected by both
// checkers with the same violation messages — the agreement is what
// proves the sharded rewrite didn't weaken any invariant.
func attachDualCheckers(tb testing.TB, m *Monitor) (*check.Checker, *check.Sharded) {
	tb.Helper()
	if !trace.Compiled {
		return nil, nil
	}
	tr := m.Machine().NewTracer(trace.DefaultRingEntries)
	ck := check.New()
	tr.Attach(ck)
	sh := check.NewSharded(tr)
	tr.AttachSharded(sh)
	// SetTracer emits KBoot, so both sinks must be attached first.
	m.Machine().SetTracer(tr)
	return ck, sh
}

// bootDualTracedWorld is bootWorld plus both checkers attached.
func bootDualTracedWorld(tb testing.TB, kind BackendKind) (*Monitor, *check.Checker, *check.Sharded) {
	tb.Helper()
	m := bootWorld(tb, kind)
	ck, sh := attachDualCheckers(tb, m)
	return m, ck, sh
}

// skipUnlessOnlyMutation skips the calling oracle when a *different*
// seeded mutation is compiled in: every mutation breaks real
// machinery, so a foreign bug trips the clean-run half of the other
// oracles (e.g. tracebug's unflushed core fails the scrub oracle's
// kill). Each CI mutation leg builds with exactly one tag and runs
// all four oracles; the three foreign ones skip here.
func skipUnlessOnlyMutation(t *testing.T, own bool) {
	t.Helper()
	anyArmed := hw.ShootdownBugArmed || hw.AckBugArmed || ScrubBugArmed || EpochBugArmed || DrainBugArmed || MigrateBugArmed
	if anyArmed && !own {
		t.Skip("a different seeded mutation is armed")
	}
}

// violationMsgs returns the sorted violation messages of a checker.
func violationMsgs(vs []check.Violation) []string {
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.Msg
	}
	sort.Strings(msgs)
	return msgs
}

// assertCheckersAgree finalises both checkers and requires that they
// reached the same verdict with the same violation-message multiset.
// Returns the (shared) error for the caller's armed/clean gate.
func assertCheckersAgree(tb testing.TB, ck *check.Checker, sh *check.Sharded) error {
	tb.Helper()
	serialErr, shardErr := ck.Err(), sh.Err()
	if (serialErr == nil) != (shardErr == nil) {
		tb.Fatalf("checkers disagree on verdict:\n  serial:  %v\n  sharded: %v", serialErr, shardErr)
	}
	a, b := violationMsgs(ck.Violations()), violationMsgs(sh.Violations())
	if len(a) != len(b) {
		tb.Fatalf("violation counts differ: serial %d %q, sharded %d %q", len(a), a, len(b), b)
	}
	for i := range a {
		if a[i] != b[i] {
			tb.Fatalf("violation message %d differs:\n  serial:  %s\n  sharded: %s", i, a[i], b[i])
		}
	}
	return serialErr
}

// TestScrubMutationOracle: under the scrubbug build tag the kill path
// skips zeroing (and shooting down) the first planned exclusive
// region, so a KScrubPlan is left unmatched when KKill closes the
// destruction. Both checkers must flag the scrub-before-kill property;
// in normal builds the identical run must be clean.
func TestScrubMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, ScrubBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	dom, err := m.CreateDomain(InitialDomain, "victim")
	if err != nil {
		t.Fatal(err)
	}
	// Grant transfers ownership, so the region is exclusively the
	// victim's and must be scrubbed when it dies.
	if _, err := m.Grant(InitialDomain, node, dom, memRes(150, 2), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceKill(dom); err != nil {
		t.Fatal(err)
	}
	err = assertCheckersAgree(t, ck, sh)
	if ScrubBugArmed {
		if err == nil {
			t.Fatal("seeded skipped scrub (scrubbug) not flagged by the checkers")
		}
		if !strings.Contains(err.Error(), "killed with unscrubbed exclusive region") {
			t.Fatalf("wrong violation for seeded bug: %v", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("clean kill flagged: %v", err)
	}
}

// TestDrainMutationOracle: under the drainbug build tag the parallel
// drain round runs its first deferred revocation's flush cleanups
// OUTSIDE the round's shootdown accumulator, so extra unbatched
// shootdown rounds retire inside the KDrainBegin/KDrainEnd frame. Both
// checkers must flag the cross-ring coalescing property (6); in normal
// builds the identical parallel run must be clean.
func TestDrainMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, DrainBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	m.SetReclaimWorkers(2)
	// Two ring-owning tenants, each with two revocable flush-on-revoke
	// shares: the round defers four revocations, whose shootdowns must
	// coalesce into ONE cross-ring round.
	const entries = 8
	for i := uint64(0); i < 2; i++ {
		dom, err := m.CreateDomain(InitialDomain, "tenant")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Grant(InitialDomain, node, dom, memRes(400+i*8, 1), cap.MemRW, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		base := ringAt(t, m, dom, 400+i*8, entries)
		for j := uint64(0); j < 2; j++ {
			id, err := m.Share(InitialDomain, node, dom, memRes(500+i*8+j, 1), cap.MemRW, cap.CleanFlushTLB)
			if err != nil {
				t.Fatal(err)
			}
			enqueue(t, m, base, entries, CallRevoke, uint64(id))
		}
	}
	if n := m.DrainRings(); n != 4 {
		t.Fatalf("parallel round executed %d descriptors, want 4", n)
	}
	if got := m.Stats().RingParallelDrains; got != 1 {
		t.Fatalf("RingParallelDrains = %d, want 1", got)
	}
	err := assertCheckersAgree(t, ck, sh)
	if DrainBugArmed {
		if err == nil {
			t.Fatal("seeded uncoalesced drain shootdowns (drainbug) not flagged by the checkers")
		}
		if !strings.Contains(err.Error(), "drain round performed") {
			t.Fatalf("wrong violation for seeded bug: %v", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("clean parallel drain flagged: %v", err)
	}
}

// TestAckMutationOracle: under the ackbug build tag exactly one
// shootdown round loses core 0's acknowledgement (the flush itself
// still runs — a completion-protocol bug, unlike tracebug's stale
// TLB). Both checkers must flag the shootdown-round-completeness
// property when the enclosing operation retires short one ack.
func TestAckMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, hw.AckBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	dom, err := m.CreateDomain(InitialDomain, "target")
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Share(InitialDomain, node, dom, memRes(140, 1), cap.MemRW, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}
	// CleanFlushTLB makes the revoke run the machine's first cross-core
	// shootdown round — the one the armed mutation robs of an ack.
	if err := m.Revoke(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	err = assertCheckersAgree(t, ck, sh)
	if hw.AckBugArmed {
		if err == nil {
			t.Fatal("seeded lost ack (ackbug) not flagged by the checkers")
		}
		if !strings.Contains(err.Error(), "acked by") {
			t.Fatalf("wrong violation for seeded bug: %v", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("clean revoke flagged: %v", err)
	}
}

// TestMigrateMutationOracle: under the migratebug build tag the
// migration departure path (DepartKill) elides the source-side
// crypto-erase — the exclusive regions are announced for scrubbing but
// neither zeroed, shot down, nor key-erased, so the departed tenant's
// plaintext outlives the migration. Both checkers must flag the
// scrub-before-kill property; in normal builds the identical departure
// must be clean and the plaintext gone.
func TestMigrateMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, MigrateBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	dom, err := m.CreateDomain(InitialDomain, "departing")
	if err != nil {
		t.Fatal(err)
	}
	// The tenant's confidential working set: distinctive plaintext
	// landed before the exclusive grant (after it, dom0 has no access).
	secret := []byte("attested-migration-secret")
	secretAddr := phys.Addr(160 * pg)
	if err := m.CopyInto(InitialDomain, secretAddr, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, dom, memRes(160, 2), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.DepartKill(dom); err != nil {
		t.Fatal(err)
	}
	view, err := m.Machine().Mem.View(phys.MakeRegion(secretAddr, uint64(len(secret))))
	if err != nil {
		t.Fatal(err)
	}
	leaked := bytes.Contains(view, secret)
	err = assertCheckersAgree(t, ck, sh)
	if MigrateBugArmed {
		if err == nil {
			t.Fatal("seeded elided departure erase (migratebug) not flagged by the checkers")
		}
		if !strings.Contains(err.Error(), "killed with unscrubbed exclusive region") {
			t.Fatalf("wrong violation for seeded bug: %v", err)
		}
		if !leaked {
			t.Fatal("migratebug armed but the plaintext was erased — mutation not wired to the departure path")
		}
		return
	}
	if err != nil {
		t.Fatalf("clean departure flagged: %v", err)
	}
	if leaked {
		t.Fatal("departed tenant's plaintext survived a clean DepartKill")
	}
}
