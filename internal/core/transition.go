package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// The monitor mediates and validates all control transfers between
// domains (§3.1). A mediated Call saves the caller's cpu state, checks
// the target may run on the core, and enters the target at its fixed
// entry point; Return unwinds. FastSwitch is the VMFUNC path: a
// pre-authorised filter swap without a monitor exit.

// ErrCallDepth reports an attempt to return with no caller frame.
var ErrCallDepth = errors.New("core: call stack empty")

// Current returns the domain currently installed on the core. The
// installed hardware context is authoritative: guest-level VMFUNC
// switches change it without a monitor exit, exactly as on real
// hardware — the monitor only learns at the next trap.
func (m *Monitor) Current(core phys.CoreID) (DomainID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.currentDomain(core)
}

// currentDomain is Current with the monitor lock held.
func (m *Monitor) currentDomain(core phys.CoreID) (DomainID, bool) {
	if c := m.mach.Core(core); c != nil && c.Context() != nil {
		return DomainID(c.Context().Owner), true
	}
	id, ok := m.current[core]
	return id, ok
}

// Launch starts the initial domain (or any domain with an entry point)
// on a core with an empty call stack — boot-time scheduling.
func (m *Monitor) Launch(id DomainID, core phys.CoreID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if !d.entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, id)
	}
	if !m.space.OwnerHasCore(cap.OwnerID(id), core) {
		return m.deny("domain %d may not run on %v", id, core)
	}
	c := m.mach.Core(core)
	if c == nil {
		return fmt.Errorf("core: no core %v", core)
	}
	if err := m.bk.Transition(c, cap.OwnerID(id), false); err != nil {
		return err
	}
	c.PC = d.entry
	c.Regs = [hw.NumRegs]uint64{}
	c.Ring = d.entryRing
	m.current[core] = id
	m.frames[core] = m.frames[core][:0]
	m.stats.Transitions++
	m.emitCore(core, trace.KTransition, id, 0, 0, 0, trace.TransLaunch)
	return nil
}

// Call transfers control on core from the current domain to target,
// entering at target's fixed entry point with argument registers
// r0..r5 copied from the caller. The transfer is validated: the target
// must be live, runnable on the core, and have an entry point.
func (m *Monitor) Call(core phys.CoreID, target DomainID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.call(core, target)
}

// call is Call with the monitor lock held (the guest ABI path).
func (m *Monitor) call(core phys.CoreID, target DomainID) error {
	cur, ok := m.currentDomain(core)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	td, err := m.liveDomain(target)
	if err != nil {
		return err
	}
	if !td.entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, target)
	}
	if !m.space.OwnerHasCore(cap.OwnerID(target), core) {
		return m.deny("domain %d may not run on %v", target, core)
	}
	c := m.mach.Core(core)
	// Save the caller's register state into its context.
	curCtx, err := m.bk.Context(cap.OwnerID(cur), core)
	if err != nil {
		return err
	}
	c.SaveInto(curCtx)
	// Enter the target: argument registers carry over.
	var args [6]uint64
	copy(args[:], c.Regs[:6])
	if err := m.bk.Transition(c, cap.OwnerID(target), false); err != nil {
		return err
	}
	c.Regs = [hw.NumRegs]uint64{}
	copy(c.Regs[:6], args[:])
	c.PC = td.entry
	c.Ring = td.entryRing
	m.frames[core] = append(m.frames[core], cur)
	m.current[core] = target
	m.stats.Transitions++
	m.emitCore(core, trace.KTransition, target, uint64(cur), 0, 0, trace.TransCall)
	return nil
}

// Return unwinds one mediated call: control goes back to the caller
// domain, which resumes after its call site. Registers r0 and r1 of the
// returning domain are delivered to the caller as return values.
func (m *Monitor) Return(core phys.CoreID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ret(core)
}

// ret is Return with the monitor lock held (the guest ABI path).
func (m *Monitor) ret(core phys.CoreID) error {
	frames := m.frames[core]
	if len(frames) == 0 {
		return ErrCallDepth
	}
	caller := frames[len(frames)-1]
	m.frames[core] = frames[:len(frames)-1]
	c := m.mach.Core(core)
	ret0, ret1 := c.Regs[0], c.Regs[1]
	if _, err := m.liveDomain(caller); err != nil {
		// The caller died while the callee ran; the core has nowhere to
		// return to.
		return err
	}
	callerCtx, err := m.bk.Context(cap.OwnerID(caller), core)
	if err != nil {
		return err
	}
	if err := m.bk.Transition(c, cap.OwnerID(caller), false); err != nil {
		return err
	}
	c.RestoreFrom(callerCtx)
	c.Regs[0], c.Regs[1] = ret0, ret1
	returning := m.current[core]
	m.current[core] = caller
	m.stats.Transitions++
	m.emitCore(core, trace.KTransition, caller, uint64(returning), 0, 0, trace.TransReturn)
	return nil
}

// RegisterFastPath authorises VMFUNC-style fast switches between two
// domains on a core. Both must be runnable on the core; the monitor
// validates once, then the hardware switches without monitor exits —
// "accelerate existing operations with hardware, such as fast (100
// cycles) domain transitions using VMFUNC" (§4.1).
func (m *Monitor) RegisterFastPath(caller DomainID, a, b DomainID, core phys.CoreID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.liveDomain(caller); err != nil {
		return err
	}
	if caller != a && caller != b {
		return m.deny("domain %d is not an endpoint of the fast path", caller)
	}
	for _, id := range []DomainID{a, b} {
		if _, err := m.liveDomain(id); err != nil {
			return err
		}
		if !m.space.OwnerHasCore(cap.OwnerID(id), core) {
			return m.deny("domain %d may not run on %v", id, core)
		}
	}
	return m.bk.RegisterFastPair(core, cap.OwnerID(a), cap.OwnerID(b))
}

// FastSwitch performs a pre-authorised fast transition to target on
// core, jumping to target's entry point. Register state carries over
// entirely (the fast path trades register hygiene for speed; domains
// using it share a protocol, like Hodor-style data-plane libraries).
func (m *Monitor) FastSwitch(core phys.CoreID, target DomainID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fastSwitch(core, target)
}

// fastSwitch is FastSwitch with the monitor lock held.
func (m *Monitor) fastSwitch(core phys.CoreID, target DomainID) error {
	if _, ok := m.current[core]; !ok {
		return fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	td, err := m.liveDomain(target)
	if err != nil {
		return err
	}
	if !td.entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, target)
	}
	c := m.mach.Core(core)
	if err := m.bk.Transition(c, cap.OwnerID(target), true); err != nil {
		return err
	}
	from := m.current[core]
	c.PC = td.entry
	m.current[core] = target
	m.stats.FastSwitches++
	m.emitCore(core, trace.KTransition, target, uint64(from), 0, 0, trace.TransFast)
	return nil
}

// RunResult describes why RunCore stopped.
type RunResult struct {
	// Steps is the number of instructions retired across all domains.
	Steps int
	// Trap is the final trap (TrapHalt with an empty call stack, a
	// fault, or TrapNone when the budget ran out).
	Trap hw.Trap
	// Domain is the domain that was running when RunCore stopped.
	Domain DomainID
}

// RunCore drives guest execution on a core, dispatching traps:
//
//   - VMCall: decoded per the guest ABI (abi.go) and handled; the
//     monitor charges a VM exit + entry round trip.
//   - Syscall: dispatched to the current domain's registered Go-level
//     kernel handler — an intra-domain event the monitor stays out of.
//   - Halt: treated as an implicit Return when the core has caller
//     frames (an enclave completing its call), else RunCore stops.
//   - Fault/Illegal: execution stops and the trap is reported; policy
//     belongs to the embedding system, not the monitor.
//
// RunCore holds the monitor lock only while handling traps: guest
// execution between traps runs without it, which is what lets RunCores
// drive many cores in parallel with monitor entries serialised.
func (m *Monitor) RunCore(core phys.CoreID, budget int) (RunResult, error) {
	c := m.mach.Core(core)
	if c == nil {
		return RunResult{}, fmt.Errorf("core: no core %v", core)
	}
	if _, ok := m.Current(core); !ok {
		return RunResult{}, fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	// The installed context decides attribution: guest VMFUNC switches
	// change the running domain without informing the monitor.
	// curLocked requires the monitor lock (for the no-context fallback);
	// cur acquires it.
	curLocked := func() DomainID {
		if ctx := c.Context(); ctx != nil {
			return DomainID(ctx.Owner)
		}
		return m.current[core]
	}
	cur := func() DomainID {
		m.mu.Lock()
		defer m.mu.Unlock()
		return curLocked()
	}
	total := 0
	for total < budget {
		// Route pending device interrupts before resuming guest code:
		// IRQs raised by drivers or handlers during the previous trap
		// window are delivered at the next entry, like real injection.
		if err := m.routeIRQs(c); err != nil {
			return RunResult{Steps: total, Domain: cur()}, err
		}
		n, trap := c.Run(budget - total)
		total += n
		switch trap.Kind {
		case hw.TrapNone, hw.TrapTimer:
			// Budget exhausted or the preemption timer fired: hand
			// control back to the embedding scheduler.
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		case hw.TrapHalt:
			m.mu.Lock()
			if len(m.frames[core]) > 0 {
				err := m.ret(core)
				m.mu.Unlock()
				if err != nil {
					return RunResult{Steps: total, Trap: trap, Domain: cur()}, err
				}
				continue
			}
			m.mu.Unlock()
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		case hw.TrapVMCall:
			m.mach.Clock.Advance(m.mach.Cost.VMExit)
			m.mu.Lock()
			m.stats.VMExits++
			stop, err := m.handleVMCall(c, core)
			m.mu.Unlock()
			m.mach.Clock.Advance(m.mach.Cost.VMEntry)
			if err != nil {
				return RunResult{Steps: total, Trap: trap, Domain: cur()}, err
			}
			if stop {
				return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
			}
		case hw.TrapSyscall:
			m.mach.Clock.Advance(m.mach.Cost.Syscall)
			m.mu.Lock()
			m.stats.Syscalls++
			id := curLocked()
			d := m.domains[id]
			var handler SyscallHandler
			if d != nil {
				handler = d.syscall
			}
			m.mu.Unlock()
			if handler == nil {
				return RunResult{Steps: total, Trap: trap, Domain: id},
					fmt.Errorf("core: domain %d has no syscall handler", id)
			}
			// The handler is the domain's Go-level kernel: it re-enters
			// the monitor through the public API, so it runs unlocked.
			if err := handler(c); err != nil {
				return RunResult{Steps: total, Trap: trap, Domain: id}, err
			}
			m.mach.Clock.Advance(m.mach.Cost.Sysret)
		case hw.TrapMachineCheck:
			// A hardware fault killed whatever ran here. Contain it:
			// destroy the victim domain (scrubbed), park the core, and
			// report the trap. Other cores keep running throughout.
			m.mach.Clock.Advance(m.mach.Cost.VMExit)
			m.mu.Lock()
			m.stats.VMExits++
			victim := curLocked()
			cErr := m.containFault(core, victim)
			m.mu.Unlock()
			return RunResult{Steps: total, Trap: trap, Domain: victim}, cErr
		default: // fault, illegal
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		}
	}
	return RunResult{Steps: total, Trap: hw.Trap{Kind: hw.TrapNone}, Domain: cur()}, nil
}

// RunCores drives the given cores concurrently, one goroutine per core,
// each with its own instruction budget — the SMP execution engine. With
// no cores listed it runs every core that has a domain installed. It
// returns per-core results and the first error any core hit; the other
// cores still run to completion (a failing core does not stop the
// machine, matching hardware).
func (m *Monitor) RunCores(budget int, cores ...phys.CoreID) (map[phys.CoreID]RunResult, error) {
	if len(cores) == 0 {
		for _, id := range m.mach.CoreIDs() {
			if _, ok := m.Current(id); ok {
				cores = append(cores, id)
			}
		}
	}
	results := make(map[phys.CoreID]RunResult, len(cores))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, id := range cores {
		wg.Add(1)
		go func(id phys.CoreID) {
			defer wg.Done()
			res, err := m.RunCore(id, budget)
			mu.Lock()
			defer mu.Unlock()
			results[id] = res
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core %v: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	return results, firstErr
}
