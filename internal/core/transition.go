package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// The monitor mediates and validates all control transfers between
// domains (§3.1). A mediated Call saves the caller's cpu state, checks
// the target may run on the core, and enters the target at its fixed
// entry point; Return unwinds. FastSwitch is the VMFUNC path: a
// pre-authorised filter swap without a monitor exit.
//
// Concurrency: transitions are epoch-pinned reader entries (shared
// monitor lock + pin, epoch.go) — they run concurrently with
// transitions on other cores, with delegations, and with the
// destructive family, whose irreversible effects wait out the pins.
// The per-core coreSched mutex serialises transitions on one core;
// cores never touch each other's scheduling state, so the transition
// path has no cross-core contention at all.

// ErrCallDepth reports an attempt to return with no caller frame.
var ErrCallDepth = errors.New("core: call stack empty")

// Current returns the domain currently installed on the core. The
// installed hardware context is authoritative: guest-level VMFUNC
// switches change it without a monitor exit, exactly as on real
// hardware — the monitor only learns at the next trap.
func (m *Monitor) Current(core phys.CoreID) (DomainID, bool) {
	sc, ok := m.sched[core]
	if !ok {
		return 0, false
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return m.currentDomain(core, sc)
}

// currentDomain is Current with the core's scheduling lock held.
func (m *Monitor) currentDomain(core phys.CoreID, sc *coreSched) (DomainID, bool) {
	if c := m.mach.Core(core); c != nil && c.Context() != nil {
		return DomainID(c.Context().Owner), true
	}
	return sc.cur, sc.hasCur
}

// Launch starts the initial domain (or any domain with an entry point)
// on a core with an empty call stack — boot-time scheduling.
func (m *Monitor) Launch(id DomainID, core phys.CoreID) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	entry, entrySet := d.Entry()
	if !entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, id)
	}
	ring := d.EntryRing()
	if !m.space.OwnerHasCore(cap.OwnerID(id), core) {
		return m.deny("domain %d may not run on %v", id, core)
	}
	c := m.mach.Core(core)
	if c == nil {
		return fmt.Errorf("core: no core %v", core)
	}
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := m.bk.Transition(c, cap.OwnerID(id), false); err != nil {
		return err
	}
	c.PC = entry
	c.Regs = [hw.NumRegs]uint64{}
	c.Ring = ring
	sc.cur, sc.hasCur = id, true
	sc.frames = sc.frames[:0]
	m.stats.transitions.Add(1)
	m.emitCore(core, trace.KTransition, id, 0, 0, 0, trace.TransLaunch)
	return nil
}

// Call transfers control on core from the current domain to target,
// entering at target's fixed entry point with argument registers
// r0..r5 copied from the caller. The transfer is validated: the target
// must be live, runnable on the core, and have an entry point.
func (m *Monitor) Call(core phys.CoreID, target DomainID) error {
	p := m.renter()
	defer m.rexit(p)
	return m.call(core, target)
}

// call is Call with a pinned reader entry held (the guest ABI path).
// The target's entry point is snapshotted under the domain mutex before
// the core lock is taken (Domain.mu is below coreSched.mu in the lock
// order only conceptually — they are never nested here).
func (m *Monitor) call(core phys.CoreID, target DomainID) error {
	if m.tcOn.Load() {
		if done, err := m.cachedCall(core, target); done {
			return err
		}
	}
	td, err := m.liveDomain(target)
	if err != nil {
		return err
	}
	entry, entrySet := td.Entry()
	if !entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, target)
	}
	ring := td.EntryRing()
	if !m.space.OwnerHasCore(cap.OwnerID(target), core) {
		return m.deny("domain %d may not run on %v", target, core)
	}
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	cur, ok := m.currentDomain(core, sc)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	c := m.mach.Core(core)
	// Save the caller's register state into its context.
	curCtx, err := m.bk.Context(cap.OwnerID(cur), core)
	if err != nil {
		return err
	}
	c.SaveInto(curCtx)
	// Enter the target: argument registers carry over.
	var args [6]uint64
	copy(args[:], c.Regs[:6])
	if err := m.bk.Transition(c, cap.OwnerID(target), false); err != nil {
		return err
	}
	c.Regs = [hw.NumRegs]uint64{}
	copy(c.Regs[:6], args[:])
	c.PC = entry
	c.Ring = ring
	sc.frames = append(sc.frames, cur)
	sc.cur, sc.hasCur = target, true
	m.stats.transitions.Add(1)
	m.emitCore(core, trace.KTransition, target, uint64(cur), 0, 0, trace.TransCall)
	m.tcFill(sc, core, cur, target, td, entry, ring)
	return nil
}

// Return unwinds one mediated call: control goes back to the caller
// domain, which resumes after its call site. Registers r0 and r1 of the
// returning domain are delivered to the caller as return values.
func (m *Monitor) Return(core phys.CoreID) error {
	p := m.renter()
	defer m.rexit(p)
	return m.ret(core)
}

// ret is Return with a pinned reader entry held (the guest ABI path).
func (m *Monitor) ret(core phys.CoreID) error {
	if m.tcOn.Load() {
		if done, err := m.cachedReturn(core); done {
			return err
		}
	}
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.frames) == 0 {
		return ErrCallDepth
	}
	caller := sc.frames[len(sc.frames)-1]
	sc.frames = sc.frames[:len(sc.frames)-1]
	c := m.mach.Core(core)
	ret0, ret1 := c.Regs[0], c.Regs[1]
	if _, err := m.liveDomain(caller); err != nil {
		// The caller died while the callee ran; the core has nowhere to
		// return to.
		return err
	}
	callerCtx, err := m.bk.Context(cap.OwnerID(caller), core)
	if err != nil {
		return err
	}
	if err := m.bk.Transition(c, cap.OwnerID(caller), false); err != nil {
		return err
	}
	c.RestoreFrom(callerCtx)
	c.Regs[0], c.Regs[1] = ret0, ret1
	returning := sc.cur
	sc.cur, sc.hasCur = caller, true
	m.stats.transitions.Add(1)
	m.emitCore(core, trace.KTransition, caller, uint64(returning), 0, 0, trace.TransReturn)
	return nil
}

// RegisterFastPath authorises VMFUNC-style fast switches between two
// domains on a core. Both must be runnable on the core; the monitor
// validates once, then the hardware switches without monitor exits —
// "accelerate existing operations with hardware, such as fast (100
// cycles) domain transitions using VMFUNC" (§4.1).
func (m *Monitor) RegisterFastPath(caller DomainID, a, b DomainID, core phys.CoreID) error {
	p := m.renter()
	defer m.rexit(p)
	if _, err := m.liveDomain(caller); err != nil {
		return err
	}
	if caller != a && caller != b {
		return m.deny("domain %d is not an endpoint of the fast path", caller)
	}
	for _, id := range []DomainID{a, b} {
		if _, err := m.liveDomain(id); err != nil {
			return err
		}
		if !m.space.OwnerHasCore(cap.OwnerID(id), core) {
			return m.deny("domain %d may not run on %v", id, core)
		}
	}
	return m.bk.RegisterFastPair(core, cap.OwnerID(a), cap.OwnerID(b))
}

// FastSwitch performs a pre-authorised fast transition to target on
// core, jumping to target's entry point. Register state carries over
// entirely (the fast path trades register hygiene for speed; domains
// using it share a protocol, like Hodor-style data-plane libraries).
func (m *Monitor) FastSwitch(core phys.CoreID, target DomainID) error {
	p := m.renter()
	defer m.rexit(p)
	return m.fastSwitch(core, target)
}

// fastSwitch is FastSwitch with a pinned reader entry held.
func (m *Monitor) fastSwitch(core phys.CoreID, target DomainID) error {
	td, err := m.liveDomain(target)
	if err != nil {
		return err
	}
	entry, entrySet := td.Entry()
	if !entrySet {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, target)
	}
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := m.currentDomain(core, sc); !ok {
		return fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	c := m.mach.Core(core)
	if err := m.bk.Transition(c, cap.OwnerID(target), true); err != nil {
		return err
	}
	from := sc.cur
	c.PC = entry
	sc.cur, sc.hasCur = target, true
	m.stats.fastSwitches.Add(1)
	m.emitCore(core, trace.KTransition, target, uint64(from), 0, 0, trace.TransFast)
	return nil
}

// RunResult describes why RunCore stopped.
type RunResult struct {
	// Steps is the number of instructions retired across all domains.
	Steps int
	// Trap is the final trap (TrapHalt with an empty call stack, a
	// fault, or TrapNone when the budget ran out).
	Trap hw.Trap
	// Domain is the domain that was running when RunCore stopped.
	Domain DomainID
	// Yielded reports that the run stopped because the guest invoked
	// CallYield — a cooperative hand-back to the embedding scheduler.
	Yielded bool
}

// RunCore drives guest execution on a core, dispatching traps:
//
//   - VMCall: decoded per the guest ABI (abi.go) and handled; the
//     monitor charges a VM exit + entry round trip.
//   - Syscall: dispatched to the current domain's registered Go-level
//     kernel handler — an intra-domain event the monitor stays out of.
//   - Halt: treated as an implicit Return when the core has caller
//     frames (an enclave completing its call), else RunCore stops.
//   - Fault/Illegal: execution stops and the trap is reported; policy
//     belongs to the embedding system, not the monitor.
//
// RunCore itself holds no monitor lock: guest execution between traps
// is always lock-free, and each trap handler takes exactly the locks
// its operation needs (pinned reader entries for most; the destructive
// entry for fault containment). Cores running independent workloads
// therefore do not serialise on monitor entries at all. The run loop
// is a quiescent point for the epoch engine: the core stamps its epoch
// counter between traps, which is what lets deferred frees retire.
func (m *Monitor) RunCore(core phys.CoreID, budget int) (RunResult, error) {
	c := m.mach.Core(core)
	if c == nil {
		return RunResult{}, fmt.Errorf("core: no core %v", core)
	}
	sc := m.sched[core]
	if _, ok := m.Current(core); !ok {
		return RunResult{}, fmt.Errorf("%w: %v", ErrNotRunning, core)
	}
	m.ep.setOnline(core, true)
	defer m.ep.setOnline(core, false)
	// The installed context decides attribution: guest VMFUNC switches
	// change the running domain without informing the monitor.
	cur := func() DomainID {
		if ctx := c.Context(); ctx != nil {
			return DomainID(ctx.Owner)
		}
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return sc.cur
	}
	total := 0
	for total < budget {
		// Between traps the core holds no monitor entry: a quiescent
		// point for epoch-based reclamation.
		m.ep.quiesce(core)
		// Route pending device interrupts before resuming guest code:
		// IRQs raised by drivers or handlers during the previous trap
		// window are delivered at the next entry, like real injection.
		if err := m.routeIRQs(c); err != nil {
			return RunResult{Steps: total, Domain: cur()}, err
		}
		n, trap := c.Run(budget - total)
		total += n
		switch trap.Kind {
		case hw.TrapNone, hw.TrapTimer:
			// Budget exhausted or the preemption timer fired: hand
			// control back to the embedding scheduler.
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		case hw.TrapHalt:
			sc.mu.Lock()
			depth := len(sc.frames)
			sc.mu.Unlock()
			if depth > 0 {
				if err := m.Return(core); err != nil {
					return RunResult{Steps: total, Trap: trap, Domain: cur()}, err
				}
				continue
			}
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		case hw.TrapVMCall:
			m.mach.Clock.Advance(m.mach.Cost.VMExit)
			m.stats.vmExits.Add(1)
			stop, err := m.handleVMCall(c, core)
			m.mach.Clock.Advance(m.mach.Cost.VMEntry)
			if err != nil {
				return RunResult{Steps: total, Trap: trap, Domain: cur()}, err
			}
			if stop {
				// The only stopping VMCall is CallYield: a cooperative
				// hand-back to the embedding scheduler (the multi-tenant
				// engine requeues the vCPU; dedicated-mode embedders see
				// Yielded and decide themselves).
				return RunResult{Steps: total, Trap: trap, Domain: cur(), Yielded: true}, nil
			}
		case hw.TrapSyscall:
			m.mach.Clock.Advance(m.mach.Cost.Syscall)
			m.stats.syscalls.Add(1)
			id := cur()
			var handler SyscallHandler
			if d, ok := m.tab.Load().doms[id]; ok {
				d.mu.Lock()
				handler = d.syscall
				d.mu.Unlock()
			}
			if handler == nil {
				return RunResult{Steps: total, Trap: trap, Domain: id},
					fmt.Errorf("core: domain %d has no syscall handler", id)
			}
			// The handler is the domain's Go-level kernel: it re-enters
			// the monitor through the public API, so it runs unlocked.
			if err := handler(c); err != nil {
				return RunResult{Steps: total, Trap: trap, Domain: id}, err
			}
			m.mach.Clock.Advance(m.mach.Cost.Sysret)
		case hw.TrapMachineCheck:
			// A hardware fault killed whatever ran here. Contain it:
			// destroy the victim domain (scrubbed), park the core, and
			// report the trap. Containment is a destructive-family
			// entry — readers on other cores keep flowing; the teardown
			// waits out their epoch pins instead of the whole world.
			// Synchronize never waits on this core's own pin (the trap
			// handler holds none), so containing from the faulting core
			// cannot self-deadlock.
			m.mach.Clock.Advance(m.mach.Cost.VMExit)
			m.stats.vmExits.Add(1)
			victim := cur()
			m.denter()
			cErr := m.containFault(core, victim)
			m.dexit()
			return RunResult{Steps: total, Trap: trap, Domain: victim}, cErr
		default: // fault, illegal
			return RunResult{Steps: total, Trap: trap, Domain: cur()}, nil
		}
	}
	return RunResult{Steps: total, Trap: hw.Trap{Kind: hw.TrapNone}, Domain: cur()}, nil
}

// RunCores drives the given cores concurrently, one goroutine per core,
// each with its own instruction budget — the SMP execution engine. With
// no cores listed it runs every core that has a domain installed. It
// returns per-core results and the first error any core hit; the other
// cores still run to completion (a failing core does not stop the
// machine, matching hardware).
//
// With a scheduling policy installed and domains scheduled
// (SetSchedPolicy + Schedule), RunCores instead drives the preemptive
// multi-tenant engine (schedule.go), time-multiplexing the scheduled
// vCPUs over the cores; with no cores listed the scheduled engine uses
// every core in the machine.
func (m *Monitor) RunCores(budget int, cores ...phys.CoreID) (map[phys.CoreID]RunResult, error) {
	if m.schedEnabled() {
		return m.runScheduled(budget, cores)
	}
	if len(cores) == 0 {
		for _, id := range m.mach.CoreIDs() {
			if _, ok := m.Current(id); ok {
				cores = append(cores, id)
			}
		}
	}
	results := make(map[phys.CoreID]RunResult, len(cores))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, id := range cores {
		wg.Add(1)
		go func(id phys.CoreID) {
			defer wg.Done()
			res, err := m.RunCore(id, budget)
			mu.Lock()
			defer mu.Unlock()
			results[id] = res
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core %v: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	// Dedicated-mode quiescent point: every driven core has retired, so
	// the runtime-verification service can merge its shard checkers.
	m.runCheckpoint()
	return results, firstErr
}
