package core

import (
	"encoding/binary"

	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// runGuest loads a program into dom0 at page 4, launches core 0, and
// runs it to completion.
func runGuest(t *testing.T, m *Monitor, a *hw.Asm) hw.Trap {
	t.Helper()
	code := a.MustAssemble(4 * pg)
	if err := m.CopyInto(InitialDomain, 4*pg, code); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trap
}

func TestABISelfID(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a := hw.NewAsm()
	a.Movi(0, uint32(CallSelfID)).Vmcall()
	a.Movi(0, uint32(CallLog)).Vmcall() // log r1 (= own id)
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d, _ := m.Domain(InitialDomain)
	if logs := d.Log(); len(logs) != 1 || logs[0] != uint64(InitialDomain) {
		t.Fatalf("logs = %v", logs)
	}
}

func TestABIEnumerateLen(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a := hw.NewAsm()
	a.Movi(0, uint32(CallEnumerateLen)).Vmcall()
	a.Movi(0, uint32(CallLog)).Vmcall()
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d, _ := m.Domain(InitialDomain)
	logs := d.Log()
	if len(logs) != 1 {
		t.Fatalf("logs = %v", logs)
	}
	want := len(m.OwnerNodes(InitialDomain)) // 1 mem + cores + devices roots
	// Enumerate counts records (grants+cores+devices); with no
	// delegation every root shows once.
	recs, _ := m.Enumerate(InitialDomain)
	if logs[0] != uint64(len(recs)) {
		t.Fatalf("guest saw %d resources, monitor enumerates %d (nodes %d)", logs[0], len(recs), want)
	}
}

func TestABIBadCallNumber(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a := hw.NewAsm()
	a.Movi(0, 0xdead).Vmcall()
	a.Mov(1, 0) // capture status
	a.Movi(0, uint32(CallLog)).Vmcall()
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d, _ := m.Domain(InitialDomain)
	if logs := d.Log(); len(logs) != 1 || logs[0] != StatusBadCall {
		t.Fatalf("logs = %v, want [%d]", logs, StatusBadCall)
	}
}

func TestABIDeniedCallReportsStatus(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	// Call a nonexistent domain: the guest gets StatusDenied, not a
	// crash.
	a := hw.NewAsm()
	a.Movi(0, uint32(CallDomainCall)).Movi(1, 999).Vmcall()
	a.Mov(1, 0)
	a.Movi(0, uint32(CallLog)).Vmcall()
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d, _ := m.Domain(InitialDomain)
	if logs := d.Log(); len(logs) != 1 || logs[0] != StatusDenied {
		t.Fatalf("logs = %v, want [%d]", logs, StatusDenied)
	}
	// CallReturn with no caller frame: denied too.
	m2 := bootWorld(t, BackendVTX)
	b := hw.NewAsm()
	b.Movi(0, uint32(CallReturn)).Vmcall()
	b.Mov(1, 0)
	b.Movi(0, uint32(CallLog)).Vmcall()
	b.Hlt()
	if trap := runGuest(t, m2, b); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d2, _ := m2.Domain(InitialDomain)
	if logs := d2.Log(); len(logs) != 1 || logs[0] != StatusDenied {
		t.Fatalf("logs = %v", logs)
	}
}

// TestABIAttest: the guest-facing attest verb returns the first 8
// bytes of the caller's measurement and matches what the Go-level
// Attest reports for the same nonce — the trap path goes through the
// shared-lock Attest, not the drain-only ringExec variant.
func TestABIAttest(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a := hw.NewAsm()
	a.Movi(0, uint32(CallAttest)).Movi(1, 42).Vmcall()
	a.Movi(0, uint32(CallLog)).Vmcall() // log r1 (= measurement prefix)
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	var nonce [8]byte
	binary.LittleEndian.PutUint64(nonce[:], 42)
	rep, err := m.Attest(InitialDomain, nonce[:])
	if err != nil {
		t.Fatal(err)
	}
	want := binary.LittleEndian.Uint64(rep.Measurement[:8])
	d, _ := m.Domain(InitialDomain)
	if logs := d.Log(); len(logs) != 1 || logs[0] != want {
		t.Fatalf("guest logged %v, want measurement prefix %#x", logs, want)
	}
	if got := m.Stats().Attests; got != 2 { // one guest trap + one Go-level
		t.Fatalf("attests = %d, want 2", got)
	}
}

func TestABIFastSwitchDeniedWithoutRegistration(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	comp, _ := m.CreateDomain(InitialDomain, "c")
	node := dom0MemNode(t, m)
	prog := hw.NewAsm()
	prog.Hlt()
	if err := m.CopyInto(InitialDomain, 64*pg, prog.MustAssemble(64*pg)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, comp, memRes(64, 1), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, comp, 64*pg); err != nil {
		t.Fatal(err)
	}
	a := hw.NewAsm()
	a.Movi(0, uint32(CallFastSwitch)).Movi(1, uint32(comp)).Vmcall()
	a.Mov(1, 0)
	a.Movi(0, uint32(CallLog)).Vmcall()
	a.Hlt()
	if trap := runGuest(t, m, a); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d, _ := m.Domain(InitialDomain)
	if logs := d.Log(); len(logs) != 1 || logs[0] != StatusDenied {
		t.Fatalf("logs = %v", logs)
	}
}

func TestNestedMediatedCalls(t *testing.T) {
	// dom0 -> A -> B and back, verifying the per-core frame stack.
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}
	mkService := func(name string, page uint64, body func(a *hw.Asm)) DomainID {
		id, err := m.CreateDomain(InitialDomain, name)
		if err != nil {
			t.Fatal(err)
		}
		a := hw.NewAsm()
		body(a)
		code := a.MustAssemble(phys.Addr(page * pg))
		if err := m.CopyInto(InitialDomain, phys.Addr(page*pg), code); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Grant(InitialDomain, node, id, memRes(page, 1), cap.MemRWX, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Share(InitialDomain, coreNode, id, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		if err := m.SetEntry(InitialDomain, id, phys.Addr(page*pg)); err != nil {
			t.Fatal(err)
		}
		return id
	}
	// B: r1 = r2 * 3, return.
	b := mkService("b", 80, func(a *hw.Asm) {
		a.Movi(3, 3)
		a.Mul(1, 2, 3)
		a.Movi(0, uint32(CallReturn)).Vmcall()
		a.Hlt()
	})
	// A: call B with r2+1, add 100 to B's result, return.
	aID := mkService("a", 72, func(a *hw.Asm) {
		a.Movi(3, 1)
		a.Add(2, 2, 3) // r2 = arg+1
		a.Movi(0, uint32(CallDomainCall)).Movi(1, uint32(b)).Vmcall()
		// r1 = B's result
		a.Movi(3, 100)
		a.Add(1, 1, 3)
		a.Movi(0, uint32(CallReturn)).Vmcall()
		a.Hlt()
	})
	host := hw.NewAsm()
	host.Movi(0, uint32(CallDomainCall)).Movi(1, uint32(aID)).Movi(2, 6).Vmcall()
	host.Movi(0, uint32(CallLog)).Vmcall() // log result
	host.Hlt()
	if trap := runGuest(t, m, host); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	d0, _ := m.Domain(InitialDomain)
	// (6+1)*3 + 100 = 121
	if logs := d0.Log(); len(logs) != 1 || logs[0] != 121 {
		t.Fatalf("logs = %v, want [121]", logs)
	}
	if m.Stats().Transitions < 4 {
		t.Fatalf("transitions = %d", m.Stats().Transitions)
	}
}
