package core

// The multi-tenant scheduling engine: time-multiplexes N scheduled
// domains over M cores (N ≫ M) by driving the internal/sched run
// queues from Monitor.RunCores. Dedicated-core mode stays the
// default; installing a sched.Policy and scheduling at least one
// domain opts a monitor in.
//
// The engine is bulk-synchronous: each round has a sequential
// dispatch phase (ascending core order: pop, validate, transition,
// arm the preemption timer), a parallel run phase (one goroutine per
// dispatched core, exactly the SMP engine), and a sequential barrier
// phase (ascending core order: save or retire each vCPU, requeue).
// Every queue decision and every cycle-clock read happens at a
// sequential point with all cores quiescent, so the schedule — the
// scheduler's dispatch Record sequence — is a pure function of
// (seed, arrival order, cycle counts): bit-identical across runs,
// across hosts, and under the race detector. The golden-trace and
// cycle bit-identity gates from earlier PRs survive untouched because
// nothing here consults wall time.
//
// Lock order: the engine's sequential phases run with no monitor
// locks and take lk shared → coreSched.mu inside dispatch, exactly
// like Launch; schedMu and the Scheduler's own mutex are leaves
// (destruction purges the queue under the exclusive lk, giving
// lk → schedMu → sched's mutex — never the reverse).

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/trace"
)

// schedStaged is one staged arrival: a vCPU scheduled before the run
// queue materialises (Schedule) or restored from a migration snapshot
// (ScheduleResumed), replayed in arrival order at the first scheduled
// RunCores.
type schedStaged struct {
	id      DomainID
	resumed bool
	regs    [hw.NumRegs]uint64
	pc      phys.Addr
	ring    hw.Ring
}

// SetSchedPolicy installs (or, with nil, removes) the multi-tenant
// scheduling policy. Installing a policy discards any previous run
// queue; domains scheduled afterwards form a fresh arrival order.
func (m *Monitor) SetSchedPolicy(pol *sched.Policy) {
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	m.schedPol = pol
	m.schedSet = nil
	m.runq = nil
}

// Schedule enqueues one vCPU for the domain on the monitor's run
// queue (SetSchedPolicy first). A domain may be scheduled more than
// once — each call adds an independent vCPU. Arrival order is call
// order, part of the determinism contract.
func (m *Monitor) Schedule(id DomainID) error {
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if _, ok := d.Entry(); !ok {
		return fmt.Errorf("%w: domain %d", ErrNoEntry, id)
	}
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	if m.schedPol == nil {
		return fmt.Errorf("core: no scheduling policy installed (SetSchedPolicy)")
	}
	if m.runq != nil {
		m.runq.Add(uint64(id), m.mach.Clock.Cycles())
		return nil
	}
	// The run queue materialises at the first scheduled RunCores, once
	// the core set is known; until then arrivals are staged in order.
	m.schedSet = append(m.schedSet, schedStaged{id: id})
	return nil
}

// ScheduleResumed enqueues a vCPU restored from a migration snapshot
// (migrate.go): its saved architectural state dispatches via the
// TransDispatch resume path instead of an entry-point launch. Same
// staging rules as Schedule — the restored vCPU is a new arrival in
// this monitor's determinism contract.
func (m *Monitor) ScheduleResumed(id DomainID, regs [hw.NumRegs]uint64, pc phys.Addr, ring hw.Ring) error {
	if _, err := m.liveDomain(id); err != nil {
		return err
	}
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	if m.schedPol == nil {
		return fmt.Errorf("core: no scheduling policy installed (SetSchedPolicy)")
	}
	if m.runq != nil {
		m.runq.AddResumed(uint64(id), regs, pc, ring, m.mach.Clock.Cycles())
		return nil
	}
	m.schedSet = append(m.schedSet, schedStaged{id: id, resumed: true, regs: regs, pc: pc, ring: ring})
	return nil
}

// Scheduler returns the monitor's live run queue (nil when the
// monitor is in dedicated-core mode or no scheduled run has started).
// Experiments read dispatch records, the schedule hash, and latency
// samples from it.
func (m *Monitor) Scheduler() *sched.Scheduler {
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	return m.runq
}

// schedEnabled reports whether RunCores must route to the scheduling
// engine: a policy is installed and at least one vCPU has ever been
// scheduled.
func (m *Monitor) schedEnabled() bool {
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	return m.schedPol != nil && (m.runq != nil || len(m.schedSet) > 0)
}

// schedQueue returns the persistent run queue, creating it over the
// given cores on first use and replaying the staged arrival order.
func (m *Monitor) schedQueue(cores []phys.CoreID) *sched.Scheduler {
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	if m.runq == nil {
		m.runq = sched.New(*m.schedPol, cores)
		now := m.mach.Clock.Cycles()
		for _, st := range m.schedSet {
			if st.resumed {
				m.runq.AddResumed(uint64(st.id), st.regs, st.pc, st.ring, now)
			} else {
				m.runq.Add(uint64(st.id), now)
			}
		}
		m.schedSet = nil
	}
	return m.runq
}

// schedPurge drops every queued vCPU of a dying domain from the run
// queue. Called by destroyDomain after the death publish and grace
// period: any dispatch that validated liveness before the publish has
// retired, and later ones fail the liveness check — so a ForceKilled
// domain is never dispatched again.
func (m *Monitor) schedPurge(id DomainID) {
	m.schedMu.Lock()
	q := m.runq
	m.schedMu.Unlock()
	if q == nil {
		return
	}
	if n := q.PurgeDomain(uint64(id)); n > 0 {
		m.stats.schedPurged.Add(uint64(n))
	}
}

// runScheduled is the oversubscribed RunCores: rounds of sequential
// dispatch, parallel execution, sequential barrier, until the queues
// drain or every core's budget is spent. With no cores listed it
// schedules over every core in the machine.
func (m *Monitor) runScheduled(budget int, cores []phys.CoreID) (map[phys.CoreID]RunResult, error) {
	if len(cores) == 0 {
		cores = m.mach.CoreIDs()
	}
	cores = append([]phys.CoreID(nil), cores...)
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	q := m.schedQueue(cores)

	remaining := make(map[phys.CoreID]int, len(cores))
	results := make(map[phys.CoreID]RunResult, len(cores))
	for _, c := range cores {
		remaining[c] = budget
		results[c] = RunResult{Trap: hw.Trap{Kind: hw.TrapNone}}
	}

	type outcome struct {
		v   *sched.VCPU
		res RunResult
		err error
	}
	var firstErr error
	for firstErr == nil {
		// Dispatch phase: ascending core order, cores quiescent. A vCPU
		// whose domain died between enqueue and dispatch is dropped here
		// (purge already removed queued ones; this catches kills that
		// landed while the vCPU was popped on a previous round's core).
		running := make(map[phys.CoreID]*sched.VCPU, len(cores))
		for _, c := range cores {
			if remaining[c] <= 0 {
				continue
			}
			for {
				v, ok := q.Next(c)
				if !ok {
					break
				}
				live, err := m.dispatchVCPU(v, c)
				if err != nil {
					firstErr = fmt.Errorf("core %v: %w", c, err)
					break
				}
				if !live {
					m.stats.schedPurged.Add(1)
					continue
				}
				slice := q.Quantum(v)
				if slice > remaining[c] {
					slice = remaining[c]
				}
				m.mach.Core(c).ArmTimer(slice)
				q.Dispatched(v, c, m.mach.Clock.Cycles())
				m.stats.schedDispatches.Add(1)
				if v.Stolen {
					m.stats.schedSteals.Add(1)
				}
				running[c] = v
				break
			}
		}
		if len(running) == 0 || firstErr != nil {
			break
		}

		// Run phase: the SMP engine proper — one goroutine per
		// dispatched core, no scheduler state touched.
		outs := make(map[phys.CoreID]*outcome, len(running))
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		for c, v := range running {
			wg.Add(1)
			go func(c phys.CoreID, v *sched.VCPU) {
				defer wg.Done()
				res, err := m.RunCore(c, remaining[c])
				mu.Lock()
				outs[c] = &outcome{v: v, res: res, err: err}
				mu.Unlock()
			}(c, v)
		}
		wg.Wait()

		// Barrier phase: ascending core order again — requeue order is
		// part of the schedule and must not depend on goroutine timing.
		for _, c := range cores {
			o := outs[c]
			if o == nil {
				continue
			}
			agg := results[c]
			agg.Steps += o.res.Steps
			agg.Trap = o.res.Trap
			agg.Domain = o.res.Domain
			agg.Yielded = o.res.Yielded
			results[c] = agg
			remaining[c] -= o.res.Steps
			if o.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("core %v: %w", c, o.err)
				}
				continue
			}
			now := m.mach.Clock.Cycles()
			switch {
			case o.res.Yielded:
				m.saveVCPU(o.v, c)
				q.Requeue(o.v, now, true)
				m.stats.schedYields.Add(1)
			case o.res.Trap.Kind == hw.TrapTimer:
				m.saveVCPU(o.v, c)
				q.Requeue(o.v, now, false)
				m.stats.schedPreemptions.Add(1)
			case o.res.Trap.Kind == hw.TrapNone:
				// Core budget exhausted mid-slice: park the vCPU back on
				// the queue (another core may steal it) and retire the
				// core from further dispatch rounds.
				m.saveVCPU(o.v, c)
				q.Requeue(o.v, now, false)
				remaining[c] = 0
			case o.res.Trap.Kind == hw.TrapHalt:
				// Ran to completion (halt with an empty call stack).
				m.stats.schedCompleted.Add(1)
			case o.res.Trap.Kind == hw.TrapMachineCheck:
				// Containment already destroyed the victim (purging its
				// queued siblings) and parked the core.
				remaining[c] = 0
			default:
				// Fault/illegal: the vCPU is wedged; drop it. Policy
				// beyond that belongs to the embedder, as in dedicated
				// mode.
			}
		}
		// The round barrier is the engine's natural quiescent point:
		// every core is outside any monitor entry, so stamp the epoch
		// counters (advancing deferred reclamation) before the ring
		// drain. Host-side atomics only — the cycle clock is untouched.
		for _, c := range cores {
			m.ep.quiesce(c)
		}
		// Round-barrier ring drain: every core is quiescent and the
		// cycle clock is at a sequential point, so batched work lands at
		// a deterministic place in the schedule. Guarded by one atomic
		// load — runs with no rings registered take this branch never
		// and stay cycle-identical to pre-ring builds.
		if firstErr == nil && m.ringCount.Load() > 0 {
			pd := m.stats.ringParallelDrains.Load()
			if n := m.DrainRings(); n > 0 {
				q.RecordBarrierDrain(n)
			}
			// Attribute partitioned parallel rounds (opt-in pipeline) to
			// the schedule's drain accounting.
			if rounds := m.stats.ringParallelDrains.Load() - pd; rounds > 0 {
				q.RecordParallelDrain(rounds, uint64(m.reclaimWorkers.Load()))
			}
		}
		// Round barriers are where the runtime-verification service
		// merges its shard checkers: every core is quiescent, so the
		// cross-core trace properties are settled. Host-side only — an
		// uninstalled hook is one atomic load.
		m.runCheckpoint()
	}
	// Leave no stale one-shot timers armed across engine invocations.
	for _, c := range cores {
		m.mach.Core(c).ArmTimer(0)
	}
	if s := q.Counters().MaxQueueDepth; s > m.stats.schedMaxQueue.Load() {
		m.stats.schedMaxQueue.Store(s)
	}
	return results, firstErr
}

// dispatchVCPU installs v on core: the first dispatch launches the
// domain at its entry point; later ones restore the vCPU's saved
// state. Returns live=false (no error) when the vCPU's domain died or
// lost its core capability — the caller drops the vCPU, which is the
// containment contract for anything a purge could not catch.
func (m *Monitor) dispatchVCPU(v *sched.VCPU, core phys.CoreID) (live bool, err error) {
	if !v.Started {
		err := m.Launch(DomainID(v.Domain), core)
		switch {
		case err == nil:
			v.Started = true
			v.Running = v.Domain
			return true, nil
		case errors.Is(err, ErrDead), errors.Is(err, ErrNoSuchDomain),
			errors.Is(err, ErrDenied), errors.Is(err, ErrNoEntry):
			return false, nil
		default:
			return false, err
		}
	}
	return m.resumeVCPU(v, core)
}

// resumeVCPU performs the TransDispatch transition: validated like
// Launch (liveness of the running domain and every saved call frame,
// core capability) but restoring the vCPU's architectural state
// instead of entering at the fixed entry point. Pinned reader entry →
// per-core lock, the standard transition order; the pin orders the
// dispatch's KTransition before any concurrent kill's KKill.
func (m *Monitor) resumeVCPU(v *sched.VCPU, core phys.CoreID) (bool, error) {
	p := m.renter()
	defer m.rexit(p)
	id := DomainID(v.Running)
	if _, err := m.liveDomain(id); err != nil {
		return false, nil
	}
	for _, f := range v.Frames {
		if _, err := m.liveDomain(DomainID(f)); err != nil {
			// A saved caller died while the vCPU was queued; the stack
			// can never unwind, so the whole vCPU is unschedulable.
			return false, nil
		}
	}
	if !m.space.OwnerHasCore(cap.OwnerID(id), core) {
		return false, nil
	}
	c := m.mach.Core(core)
	if c == nil {
		return false, fmt.Errorf("core: no core %v", core)
	}
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := m.bk.Transition(c, cap.OwnerID(id), false); err != nil {
		return false, err
	}
	c.Regs = v.Regs
	c.PC = v.PC
	c.Ring = v.Ring
	sc.frames = sc.frames[:0]
	for _, f := range v.Frames {
		sc.frames = append(sc.frames, DomainID(f))
	}
	sc.cur, sc.hasCur = id, true
	m.stats.transitions.Add(1)
	m.emitCore(core, trace.KTransition, id, 0, 0, 0, trace.TransDispatch)
	return true, nil
}

// saveVCPU captures the preempted vCPU's architectural state and the
// core's mediated-call stack so a later dispatch — possibly on
// another core — can restore it exactly.
func (m *Monitor) saveVCPU(v *sched.VCPU, core phys.CoreID) {
	c := m.mach.Core(core)
	sc := m.sched[core]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	v.Regs = c.Regs
	v.PC = c.PC
	v.Ring = c.Ring
	if cur, ok := m.currentDomain(core, sc); ok {
		v.Running = uint64(cur)
	}
	v.Frames = v.Frames[:0]
	for _, f := range sc.frames {
		v.Frames = append(v.Frames, uint64(f))
	}
	sc.frames = sc.frames[:0]
	sc.cur, sc.hasCur = 0, false
}
