package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Containment tests: every injected fault class must leave the system
// in a provably clean state — victim destroyed, exclusive memory
// scrubbed and reclaimed, hardware filters denying, isolation
// invariants intact, and every surviving domain's workload completing.
// Each scenario is replayable from its (seed, schedule) pair alone.

const (
	victimCode = 64 // page of the victim's code
	victimData = 65 // page of the victim's patterned data
)

// victimPattern fills the victim's data page so scrubbing is provable.
var victimPattern = bytes.Repeat([]byte{0xAB}, pg)

// buildVictim creates a sealed enclave on core 1 with two exclusive
// pages (code + patterned data) and an endless store loop, delegated
// with CleanNone so any zeroing observed later is the containment
// path's forced scrub, not the domain's own cleanup policy.
func buildVictim(t testing.TB, m *Monitor) DomainID {
	t.Helper()
	victim, err := m.CreateDomain(InitialDomain, "victim")
	if err != nil {
		t.Fatal(err)
	}
	a := hw.NewAsm()
	a.Movi(1, uint32(victimData*pg))
	a.Movi(2, 0)
	a.Label("loop")
	a.St(1, 0, 2)
	a.Addi(2, 2, 1)
	a.Jmp("loop")
	if err := m.CopyInto(InitialDomain, victimCode*pg, a.MustAssemble(victimCode*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyInto(InitialDomain, victimData*pg, victimPattern); err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	if _, err := m.Grant(InitialDomain, node, victim, memRes(victimCode, 2), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 1 {
			coreNode = n.ID
		}
	}
	if _, err := m.Share(InitialDomain, coreNode, victim, cap.CoreResource(1), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, victim, victimCode*pg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(InitialDomain, victim); err != nil {
		t.Fatal(err)
	}
	return victim
}

// launchSurvivor puts a sum-loop workload for dom0 on core 0; it must
// finish with r1 == 45 no matter what happens to other domains.
func launchSurvivor(t testing.TB, m *Monitor) {
	t.Helper()
	a := hw.NewAsm()
	a.Movi(1, 0)
	a.Movi(2, 0)
	a.Movi(3, 10)
	a.Label("loop")
	a.Add(1, 1, 2)
	a.Addi(2, 2, 1)
	a.Jlt(2, 3, "loop")
	a.Hlt()
	if err := m.CopyInto(InitialDomain, 4*pg, a.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
}

// checkContained asserts the full post-kill state: victim dead, its
// pages scrubbed and back under dom0, filters denying, invariants
// holding, survivor workload completed.
func checkContained(t *testing.T, m *Monitor, victim DomainID, results map[phys.CoreID]RunResult) {
	t.Helper()
	if d, err := m.Domain(victim); err != nil || d.State() != StateDead {
		t.Fatalf("victim state = %v, %v; want dead", d, err)
	}
	for _, id := range m.Domains() {
		if id == victim {
			t.Fatal("dead victim still enumerated")
		}
	}
	// Memory reverted to dom0 and was scrubbed despite CleanNone.
	for _, page := range []uint64{victimCode, victimData} {
		if !m.CheckAccess(InitialDomain, phys.Addr(page*pg), cap.RightRead) {
			t.Fatalf("page %d not reclaimed by dom0", page)
		}
		data, err := m.CopyFrom(InitialDomain, phys.Addr(page*pg), pg)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			if b != 0 {
				t.Fatalf("page %d byte %d not scrubbed: %#x", page, i, b)
			}
		}
	}
	if st := m.Stats(); st.PagesScrubbed < 2 {
		t.Fatalf("PagesScrubbed = %d, want >= 2", st.PagesScrubbed)
	}
	// Survivor finished its workload with the right answer.
	if res, ok := results[0]; ok {
		if res.Trap.Kind != hw.TrapHalt {
			t.Fatalf("survivor trap = %v, want halt", res.Trap)
		}
	}
	if got := m.Machine().Core(0).Regs[1]; got != 45 {
		t.Fatalf("survivor result = %d, want 45", got)
	}
	checkIsolationInvariants(t, m, []DomainID{InitialDomain, victim})
}

func TestMachineCheckContainment(t *testing.T) {
	for _, kind := range []BackendKind{BackendVTX, BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			m, ck := bootTracedWorld(t, kind)
			victim := buildVictim(t, m)
			launchSurvivor(t, m)
			if err := m.Launch(victim, 1); err != nil {
				t.Fatal(err)
			}
			sched, err := fault.ParseSchedule("mc1@100")
			if err != nil {
				t.Fatal(err)
			}
			in := fault.NewInjector(sched...)
			in.Arm(m.Machine(), nil)
			results, err := m.RunCores(100_000, 0, 1)
			if err != nil {
				t.Fatalf("RunCores: %v", err)
			}
			if results[1].Trap.Kind != hw.TrapMachineCheck {
				t.Fatalf("victim trap = %v, want machine-check", results[1].Trap)
			}
			if results[1].Domain != victim {
				t.Fatalf("trap attributed to domain %d, want %d", results[1].Domain, victim)
			}
			if !in.Exhausted() {
				t.Fatalf("schedule did not fire: %v", in.Fired())
			}
			checkContained(t, m, victim, results)
			st := m.Stats()
			if st.MachineChecks != 1 || st.ForcedKills != 1 || st.CoresParked != 1 {
				t.Fatalf("stats = %+v", st)
			}
			// Recovery: the parked core is immediately reusable.
			if err := m.Launch(InitialDomain, 1); err != nil {
				t.Fatalf("relaunch on parked core: %v", err)
			}
			if res, err := m.RunCore(1, 1000); err != nil || res.Trap.Kind != hw.TrapHalt {
				t.Fatalf("post-recovery run = %+v, %v", res, err)
			}
			assertTraceClean(t, m, ck)
		})
	}
}

func TestCoreStallContainment(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	victim := buildVictim(t, m)
	launchSurvivor(t, m)
	if err := m.Launch(victim, 1); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Fault{Kind: fault.CoreStall, Core: 1, After: 64})
	in.Arm(m.Machine(), nil)
	results, err := m.RunCores(100_000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("victim trap = %v", results[1].Trap)
	}
	checkContained(t, m, victim, results)
	// The core is poisoned until the embedder resets it; after the
	// reset it schedules normally again.
	core1 := m.Machine().Core(1)
	if !core1.Stalled() {
		t.Fatal("core 1 should be stalled")
	}
	core1.ClearStall()
	if err := m.Launch(InitialDomain, 1); err != nil {
		t.Fatal(err)
	}
	if res, err := m.RunCore(1, 1000); err != nil || res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("post-reset run = %+v, %v", res, err)
	}
	assertTraceClean(t, m, ck)
}

func TestMachineCheckOnInitialDomainParksCore(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchSurvivor(t, m) // dom0 on core 0
	in := fault.NewInjector(fault.Fault{Kind: fault.MachineCheck, Core: 0, After: 5})
	in.Arm(m.Machine(), nil)
	res, err := m.RunCore(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("trap = %v", res.Trap)
	}
	// dom0 is never destroyed — the core is parked instead.
	d, err := m.Domain(InitialDomain)
	if err != nil || d.State() != StateActive {
		t.Fatalf("dom0 = %v, %v; want active", d, err)
	}
	st := m.Stats()
	if st.CoresParked != 1 || st.ForcedKills != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Recovery by relaunch.
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if res, err := m.RunCore(0, 1000); err != nil || res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("post-recovery run = %+v, %v", res, err)
	}
}

// runSignature captures everything a deterministic fault run must
// reproduce exactly.
func runSignature(m *Monitor, in *fault.Injector, results map[phys.CoreID]RunResult) string {
	st := m.Stats()
	var fired []string
	for _, fr := range in.Fired() {
		fired = append(fired, fr.String())
	}
	return fmt.Sprintf("trap=%v dom=%d steps=%d instrs=%d fired=%v scrubbed=%d checks=%d gen=%d",
		results[1].Trap, results[1].Domain, results[1].Steps,
		m.Machine().Core(1).InstrCount(), fired,
		st.PagesScrubbed, st.MachineChecks, m.CapGeneration())
}

func TestFaultReplaysFromSchedule(t *testing.T) {
	const schedule = "mc1@137"
	run := func() string {
		m := bootWorld(t, BackendVTX)
		victim := buildVictim(t, m)
		launchSurvivor(t, m)
		if err := m.Launch(victim, 1); err != nil {
			t.Fatal(err)
		}
		sched, err := fault.ParseSchedule(schedule)
		if err != nil {
			t.Fatal(err)
		}
		in := fault.NewInjector(sched...)
		in.Arm(m.Machine(), nil)
		results, err := m.RunCores(100_000, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return runSignature(m, in, results)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d diverged:\n  first: %s\n  again: %s", i+1, first, got)
		}
	}
}

func TestSharedMemorySurvivesVictimKill(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	victim := buildVictim(t, m)
	// Additionally share page 80 between dom0 and the victim... the
	// victim is sealed, so build the share before sealing is not
	// possible here; use a second, unsealed domain instead.
	extra, err := m.CreateDomain(InitialDomain, "sharer")
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("shared-contents-must-survive")
	if err := m.CopyInto(InitialDomain, 80*pg, shared); err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	if _, err := m.Share(InitialDomain, node, extra, memRes(80, 1), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	// Give the sharer an exclusive patterned page too.
	if err := m.CopyInto(InitialDomain, 82*pg, victimPattern); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, extra, memRes(82, 1), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceKill(extra); err != nil {
		t.Fatal(err)
	}
	// The shared page kept its contents (dom0 still co-owned it); the
	// exclusive page was scrubbed.
	got, err := m.CopyFrom(InitialDomain, 80*pg, uint64(len(shared)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shared) {
		t.Fatalf("shared page damaged: %q", got)
	}
	excl, err := m.CopyFrom(InitialDomain, 82*pg, pg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range excl {
		if b != 0 {
			t.Fatalf("exclusive byte %d not scrubbed: %#x", i, b)
		}
	}
	// ForceKill authorization and idempotence.
	if err := m.ForceKill(InitialDomain); !errors.Is(err, ErrDenied) {
		t.Fatalf("ForceKill(dom0) = %v, want denied", err)
	}
	if err := m.ForceKill(extra); !errors.Is(err, ErrDead) {
		t.Fatalf("double ForceKill = %v, want dead", err)
	}
	checkIsolationInvariants(t, m, []DomainID{InitialDomain, victim, extra})
	assertTraceClean(t, m, ck)
}

func TestDroppedIRQIsAbsorbed(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchIdle(t, m)
	var got []hw.IRQ
	if err := m.SetIRQHandler(InitialDomain, InitialDomain, func(c *hw.Core, irq hw.IRQ) error {
		got = append(got, irq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Fault{Kind: fault.DropIRQ, Device: 0, After: 1})
	in.Arm(m.Machine(), nil)
	m.Machine().RaiseIRQ(0, 1)
	m.Machine().RaiseIRQ(0, 2) // eaten by the fault
	m.Machine().RaiseIRQ(0, 3)
	cpu := m.Machine().Core(0)
	cpu.PC = 4 * pg
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Vector != 1 || got[1].Vector != 3 {
		t.Fatalf("delivered = %+v, want vectors 1 and 3", got)
	}
	if m.Machine().PendingIRQs() != 0 {
		t.Fatal("controller queue not drained")
	}
	checkIsolationInvariants(t, m, []DomainID{InitialDomain})
}

func TestSpuriousIRQRoutedByCapability(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchIdle(t, m)
	var got []hw.IRQ
	if err := m.SetIRQHandler(InitialDomain, InitialDomain, func(c *hw.Core, irq hw.IRQ) error {
		got = append(got, irq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A phantom interrupt for a device dom0 holds: routed like a real
	// one. A phantom for a device that does not exist: dropped, counted.
	in := fault.NewInjector(
		fault.Fault{Kind: fault.SpuriousIRQ, Device: 0, Vector: 7, After: 0},
		fault.Fault{Kind: fault.SpuriousIRQ, Device: 99, Vector: 3, After: 1},
	)
	in.Arm(m.Machine(), nil)
	cpu := m.Machine().Core(0)
	for i := 0; i < 2; i++ { // one poll per run; two phantoms armed
		cpu.PC = 4 * pg
		cpu.ClearHalt()
		if _, err := m.RunCore(0, 10); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 1 || got[0].Vector != 7 || got[0].Device != 0 {
		t.Fatalf("delivered = %+v, want the device-0 phantom", got)
	}
	st := m.Stats()
	if st.IRQsRouted != 1 || st.IRQsDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	checkIsolationInvariants(t, m, []DomainID{InitialDomain})
}

func TestTransientQuoteFailureRecovers(t *testing.T) {
	mach, err := hw.NewMachine(hw.Config{MemBytes: 4 << 20, NumCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Fault{Kind: fault.QuoteFail, After: 0, Count: 2})
	in.Arm(mach, rot)
	for i := 0; i < 2; i++ {
		if _, err := m.BootQuote([]byte("nonce")); !errors.Is(err, fault.ErrQuote) {
			t.Fatalf("quote %d: err = %v, want injected failure", i+1, err)
		}
	}
	// The fault is transient: the next quote succeeds and verifies
	// against the endorsement key — attestation recovers fully.
	q, err := m.BootQuote([]byte("nonce"))
	if err != nil {
		t.Fatalf("recovery quote: %v", err)
	}
	if err := tpm.VerifyQuote(rot.EndorsementKey(), q); err != nil {
		t.Fatalf("recovered quote does not verify: %v", err)
	}
	// Monitor-level attestation (its own key) was never affected.
	if _, err := m.Attest(InitialDomain, []byte("data")); err != nil {
		t.Fatalf("Attest during quote faults: %v", err)
	}
}

// TestSeededFaultCampaign drives FromSeed-derived schedules against
// full worlds — the closest test to the paper's "runtime verification"
// loop: inject whatever the seed says, contain, audit every invariant.
func TestSeededFaultCampaign(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m, ck := bootTracedWorld(t, BackendVTX)
			victim := buildVictim(t, m)
			launchSurvivor(t, m)
			if err := m.Launch(victim, 1); err != nil {
				t.Fatal(err)
			}
			sched := fault.FromSeed(seed, 2, 1, 4)
			in := fault.NewInjector(sched...)
			in.Arm(m.Machine(), nil)
			if _, err := m.RunCores(50_000, 0, 1); err != nil {
				t.Fatalf("schedule %q: %v", fault.FormatSchedule(sched), err)
			}
			// Whatever fired, the survivor finished and the world is
			// consistent; if a core fault fired, the victim is dead and
			// scrubbed.
			if got := m.Machine().Core(0).Regs[1]; got != 45 {
				t.Fatalf("schedule %q: survivor result = %d", fault.FormatSchedule(sched), got)
			}
			coreFault := false
			for _, fr := range in.Fired() {
				if fr.Fault.Kind == fault.MachineCheck || fr.Fault.Kind == fault.CoreStall {
					coreFault = true
				}
			}
			if coreFault {
				if d, _ := m.Domain(victim); d.State() != StateDead {
					t.Fatalf("schedule %q fired a core fault but victim is %v",
						fault.FormatSchedule(sched), d.State())
				}
			}
			checkIsolationInvariants(t, m, []DomainID{InitialDomain, victim})
			assertTraceClean(t, m, ck)
		})
	}
}
