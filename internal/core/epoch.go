package core

// Epoch-based reclamation (EBR) for the monitor's destructive family.
//
// PR 4 broke the big lock for the read/dispatch path but left Revoke,
// KillDomain, ForceKill, containFault, and the ring drains on the
// exclusive monitor lock: every revocation stalled every reader. This
// engine removes that last stall with the classic RCU discipline —
// publish, quiesce, reclaim:
//
//   - Publish. The destructive operation makes its change visible with
//     one serialized step that readers tolerate at either side of: the
//     domain's atomic death state, or the capability space's subtree
//     detach (cap.Space.Detach/DetachOwner, a short structural-lock
//     section that unlinks the subtree from the lock-free index while
//     leaving the parent's grant suspension in place).
//   - Quiesce. synchronize() advances the global epoch and waits until
//     every reader that entered before the publish has exited. Readers
//     declare themselves with pin/unpin (one CAS each) around their
//     monitor entry; they never block and never see the writer.
//   - Reclaim. Only after quiescence do the irreversible effects run:
//     cleanups, hardware resync, memory scrub, TLB shootdown, and —
//     through the deferred-free lists — recycling of the detached
//     capability records (cap.Space.Release + ReclaimOldest).
//
// The engine is wait-free for readers and carries a QSBR side channel:
// per-core epoch counters stamped at the scheduler's round barriers and
// at ring drains (the points where a core is provably outside any
// monitor entry). Deferred frees run only when both gates are open —
// no pin from an older epoch, and every online core stamped since the
// free was deferred.
//
// Simulated time is never touched: pins, epochs, and waits are host-
// side atomics and spins, so cycle histories stay bit-identical across
// lock policies — the same contract the PR-4 LockWait accounting obeys.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// epochSlots is the reader-slot count (power of two). Pins probe from a
// round-robin hint, so the array only needs to exceed the realistic
// number of simultaneous monitor entries; probing wraps and retries
// under oversubscription.
const epochSlots = 128

// epochMaxCores bounds the per-core QSBR counter array.
const epochMaxCores = 256

// epochPin is a reader's handle: the index of the slot it occupies.
type epochPin int32

// epochSlot is one padded reader slot. word is 0 when free, else
// (epoch<<1)|1 for the epoch the reader pinned at.
type epochSlot struct {
	word atomic.Uint64
	_    [7]uint64 // pad to a cache line: slots are CASed independently
}

// deferredBatch is one entry of the deferred-free list: fn must not run
// until every reader pinned at or before epoch has exited and every
// online core has stamped a newer epoch.
type deferredBatch struct {
	epoch uint64
	fn    func()
}

// epochEngine is the monitor's EBR instance.
type epochEngine struct {
	// global is the current epoch; synchronize is the only advancer.
	// Starts at 1 so a zero slot word is unambiguously "free".
	global atomic.Uint64
	slots  [epochSlots]epochSlot
	rr     atomic.Uint32

	// cores[i] is the epoch core i last stamped at a quiescent point
	// (round barrier, ring drain, run-loop boundary); online[i] gates
	// whether the core participates in deferred-free collection. Cores
	// that never run guest code stay offline and never block reclaim.
	cores  [epochMaxCores]atomic.Uint64
	online [epochMaxCores]atomic.Bool

	// deferMu guards the FIFO deferred-free list.
	deferMu sync.Mutex
	deferq  []deferredBatch

	// graceDone is the highest epoch T for which a grace period has
	// fully completed: every reader pinned at an epoch < T has exited.
	// synchronizeAt elides its wait when a later grace already covers
	// the caller's publish — the grace-combiner fast path.
	graceDone atomic.Uint64

	// Observability counters (EpochStats).
	pins      atomic.Uint64
	syncs     atomic.Uint64
	combined  atomic.Uint64
	elided    atomic.Uint64
	advances  atomic.Uint64
	deferred  atomic.Uint64
	reclaimed atomic.Uint64
}

func (e *epochEngine) init() {
	e.global.Store(1)
}

// pin enters a read-side critical section: claim a free slot with the
// current epoch. The CAS is sequentially consistent, so a synchronize
// that starts after the CAS observes the slot; a reader whose CAS lands
// after synchronize's publish reads post-publish state and is safe
// without being waited for.
func (e *epochEngine) pin() epochPin {
	word := e.global.Load()<<1 | 1
	i := int(e.rr.Add(1))
	for n := 0; ; n++ {
		idx := (i + n) % epochSlots
		if e.slots[idx].word.CompareAndSwap(0, word) {
			e.pins.Add(1)
			return epochPin(idx)
		}
		if n >= epochSlots {
			// Every slot busy: more simultaneous readers than slots.
			// Yield and retry — readers are short.
			runtime.Gosched()
			n = 0
			word = e.global.Load()<<1 | 1
		}
	}
}

// unpin exits the read-side critical section.
func (e *epochEngine) unpin(p epochPin) {
	e.slots[p].word.Store(0)
}

// pinned reports how many reader slots are currently occupied (tests).
func (e *epochEngine) pinned() int {
	n := 0
	for i := range e.slots {
		if e.slots[i].word.Load() != 0 {
			n++
		}
	}
	return n
}

// synchronize advances the global epoch and waits until every reader
// pinned at an older epoch has exited — the grace period. On return,
// every monitor entry that began before the caller's publish step has
// completed; entries that begin afterwards observe the published state.
// Callers (the destructive family) hold revMu, so at most one
// synchronize runs at a time; they must hold no leaf lock a pinned
// reader could block on.
//
// With the epochbug build tag the wait is compiled out — the seeded
// premature-reclaim bug the trace checker must catch (the PR-3
// tracebug pattern applied to reclamation).
func (e *epochEngine) synchronize() uint64 {
	target := e.global.Add(1)
	e.syncs.Add(1)
	if EpochBugArmed {
		return target
	}
	for i := range e.slots {
		for {
			w := e.slots[i].word.Load()
			if w == 0 || w>>1 >= target {
				break
			}
			runtime.Gosched()
		}
	}
	e.graceAdvance(target)
	e.collect()
	return target
}

// graceAdvance records that a grace period up to (excluding) target has
// completed. Monotone max — concurrent recorders cannot move it back.
func (e *epochEngine) graceAdvance(target uint64) {
	for {
		cur := e.graceDone.Load()
		if cur >= target || e.graceDone.CompareAndSwap(cur, target) {
			return
		}
	}
}

// publishTicket returns the epoch ticket for a publish step that just
// happened (caller holds revMu): the grace period that retires the
// publish must start strictly after this epoch. Capture the ticket
// AFTER the publish — the publish is then ordered before any epoch a
// pre-publish reader could still be pinned at.
func (e *epochEngine) publishTicket() uint64 { return e.global.Load() }

// synchronizeAt is the grace combiner: it guarantees a full grace
// period has elapsed since the publish that captured ticket pub, but
// runs a new synchronize only when no already-completed grace covers
// it. A grace with graceDone > pub began (global.Add advanced past
// pub) after the publish was visible and observed every older reader
// exit — exactly what the caller needs — so its wait is shared rather
// than repeated. In a serial publish→sync sequence pub equals the
// current epoch and the elision can never fire; it pays off when a
// batch entry point (kill storm, parallel drain round) publishes many
// detaches before the first wait.
func (e *epochEngine) synchronizeAt(pub uint64) {
	if e.graceDone.Load() > pub {
		e.elided.Add(1)
		return
	}
	e.synchronize()
}

// synchronizeShared is synchronizeAt for a batch of n publishes that
// share one grace period: one wait covers all of them, and the n-1
// folded-in requests are accounted as combined syncs.
func (e *epochEngine) synchronizeShared(pub uint64, n int) {
	if n <= 0 {
		return
	}
	e.synchronizeAt(pub)
	if n > 1 {
		e.combined.Add(uint64(n - 1))
	}
}

// quiesce stamps core as being at a quiescent point — outside any
// monitor entry — and tries to collect deferred frees. Called at
// scheduler round barriers, at ring drains, and at run-loop
// boundaries.
func (e *epochEngine) quiesce(core phys.CoreID) {
	if int(core) >= 0 && int(core) < epochMaxCores {
		e.cores[core].Store(e.global.Load())
		e.advances.Add(1)
	}
	e.collect()
}

// setOnline marks a core as participating (or not) in the QSBR gate.
// RunCore brackets guest execution with it.
func (e *epochEngine) setOnline(core phys.CoreID, on bool) {
	if int(core) < 0 || int(core) >= epochMaxCores {
		return
	}
	if on {
		e.cores[core].Store(e.global.Load())
	}
	e.online[core].Store(on)
}

// deferFree queues fn to run after the current epoch's readers have
// drained and every online core has stamped a newer epoch. FIFO order
// is preserved. With epochbug armed the deferral is skipped — fn runs
// immediately, before any grace period.
func (e *epochEngine) deferFree(fn func()) {
	e.deferred.Add(1)
	if EpochBugArmed {
		e.reclaimed.Add(1)
		fn()
		return
	}
	e.deferMu.Lock()
	e.deferq = append(e.deferq, deferredBatch{epoch: e.global.Load(), fn: fn})
	e.deferMu.Unlock()
}

// minObserved returns the oldest epoch any active reader or online core
// may still be at.
func (e *epochEngine) minObserved() uint64 {
	min := e.global.Load()
	for i := range e.slots {
		if w := e.slots[i].word.Load(); w != 0 {
			if ep := w >> 1; ep < min {
				min = ep
			}
		}
	}
	for i := range e.online {
		if e.online[i].Load() {
			if ep := e.cores[i].Load(); ep < min {
				min = ep
			}
		}
	}
	return min
}

// collect runs every deferred free whose grace period has elapsed:
// recorded at an epoch strictly older than anything still observed.
func (e *epochEngine) collect() {
	if e.deferred.Load() == e.reclaimed.Load() {
		return
	}
	min := e.minObserved()
	var run []deferredBatch
	e.deferMu.Lock()
	n := 0
	for _, b := range e.deferq {
		if b.epoch < min {
			n++
		} else {
			break // FIFO: later batches have equal or newer epochs
		}
	}
	if n > 0 {
		run = append(run, e.deferq[:n]...)
		e.deferq = append(e.deferq[:0], e.deferq[n:]...)
	}
	e.deferMu.Unlock()
	for _, b := range run {
		b.fn()
		e.reclaimed.Add(1)
	}
}

// EpochStats is an observability snapshot of the reclamation engine.
type EpochStats struct {
	Epoch         uint64 // current global epoch
	Pins          uint64 // read-side critical sections entered
	Pinned        int    // reader slots currently occupied
	Syncs         uint64 // grace periods (synchronize calls)
	CombinedSyncs uint64 // grace requests folded into a shared wait
	ElidedSyncs   uint64 // waits skipped because a later grace covered them
	Advances      uint64 // per-core quiescent-point stamps
	Deferred      uint64 // frees handed to the deferred lists
	Reclaimed     uint64 // frees that have run
}

// EpochStats returns the monitor's epoch-reclamation counters.
func (m *Monitor) EpochStats() EpochStats {
	return EpochStats{
		Epoch:         m.ep.global.Load(),
		Pins:          m.ep.pins.Load(),
		Pinned:        m.ep.pinned(),
		Syncs:         m.ep.syncs.Load(),
		CombinedSyncs: m.ep.combined.Load(),
		ElidedSyncs:   m.ep.elided.Load(),
		Advances:      m.ep.advances.Load(),
		Deferred:      m.ep.deferred.Load(),
		Reclaimed:     m.ep.reclaimed.Load(),
	}
}

// renter brackets a lock-free-reader monitor entry: shared monitor
// lock plus an epoch pin. Everything the entry emits (trace events,
// counters) lands before rexit, so a destructive operation that
// publishes and synchronizes is ordered strictly after every entry
// that saw the pre-publish state — the property the trace checker's
// dead-domain-silence invariant rides on.
func (m *Monitor) renter() epochPin {
	m.lk.rlock()
	return m.ep.pin()
}

// rexit ends a reader entry started by renter.
func (m *Monitor) rexit(p epochPin) {
	m.ep.unpin(p)
	m.lk.runlock()
}

// denter brackets a destructive-family entry (revoke, kill,
// containment, ring drains): the monitor lock is taken SHARED — readers
// keep flowing — and revMu serialises destructive operations against
// each other (single-writer EBR). Destructive entries never pin: they
// are what synchronize waits *for readers on behalf of*, and pinning
// here would deadlock against their own grace period. Under the
// biglock build tag rlock is the one big mutex, so the whole scheme
// degenerates to the PR-1 stop-the-world behaviour — the A/B baseline.
func (m *Monitor) denter() {
	m.lk.rlock()
	m.revMu.Lock()
}

// dexit ends a destructive-family entry.
func (m *Monitor) dexit() {
	m.revMu.Unlock()
	m.lk.runlock()
}
