package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// attachChecker installs a tracer with an online invariant checker on
// an already-booted monitor and returns the checker. Under the notrace
// build tag it returns nil and every trace assertion degrades to a
// no-op, so the suites still run.
func attachChecker(tb testing.TB, m *Monitor) *check.Checker {
	tb.Helper()
	if !trace.Compiled {
		return nil
	}
	tr := m.Machine().NewTracer(trace.DefaultRingEntries)
	ck := check.New()
	tr.Attach(ck)
	m.Machine().SetTracer(tr)
	return ck
}

// bootTracedWorld is bootWorld plus a tracer and online checker
// attached immediately after boot, so event-derived counts and
// Monitor.Stats() tally the same history from zero.
func bootTracedWorld(tb testing.TB, kind BackendKind) (*Monitor, *check.Checker) {
	tb.Helper()
	m := bootWorld(tb, kind)
	return m, attachChecker(tb, m)
}

// assertTraceClean is the oracle: no invariant violation anywhere in
// the run, and every event-derived counter agrees exactly with the
// monitor's own statistics. On violation the raw trace is dumped to
// $TYCHE_TRACE_DIR (the nightly fuzz job uploads it as an artifact).
func assertTraceClean(tb testing.TB, m *Monitor, ck *check.Checker) {
	tb.Helper()
	if ck == nil {
		return // notrace build
	}
	if err := ck.Err(); err != nil {
		dumpFailingTrace(tb, m)
		tb.Fatalf("trace checker: %v", err)
	}
	st := m.Stats()
	c := ck.Counts()
	for _, p := range []struct {
		name      string
		got, want uint64
	}{
		{"Transitions", c.Transitions, st.Transitions},
		{"FastSwitches", c.FastSwitches, st.FastSwitches},
		{"CapOps", c.CapOps, st.CapOps},
		{"Revocations", c.Revocations, st.Revocations},
		{"ForcedKills", c.ForcedKills, st.ForcedKills},
		{"MachineChecks", c.MachineChecks, st.MachineChecks},
		{"CoresParked", c.CoresParked, st.CoresParked},
		{"PagesScrubbed", c.PagesScrubbed, st.PagesScrubbed},
		{"IRQsRouted", c.IRQsRouted, st.IRQsRouted},
		{"IRQsDropped", c.IRQsDropped, st.IRQsDropped},
		{"Attests", c.Attests, st.Attests},
		{"Batches", c.Batches, st.RingFlushes},
		{"BatchedOps", c.BatchedOps, st.RingOps},
	} {
		if p.got != p.want {
			tb.Errorf("trace-derived %s = %d, Stats() says %d", p.name, p.got, p.want)
		}
	}
	// Every VM exit is either a VMCall or a machine check taken into
	// the monitor; the trace sees both kinds individually.
	if c.VMCalls+c.MachineChecks != st.VMExits {
		tb.Errorf("trace VMCalls+MachineChecks = %d+%d, Stats().VMExits = %d",
			c.VMCalls, c.MachineChecks, st.VMExits)
	}
}

// dumpFailingTrace writes the machine's trace in Chrome trace-event
// format to $TYCHE_TRACE_DIR, if set, for postmortem viewing.
func dumpFailingTrace(tb testing.TB, m *Monitor) {
	dir := os.Getenv("TYCHE_TRACE_DIR")
	if dir == "" {
		return
	}
	tr := m.Machine().Tracer()
	if tr == nil {
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_", "#", "").Replace(tb.Name()) + ".trace.json"
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		tb.Logf("cannot dump trace: %v", err)
		return
	}
	defer f.Close()
	if err := trace.WriteChromeTrace(f, tr.Events()); err != nil {
		tb.Logf("cannot dump trace: %v", err)
		return
	}
	tb.Logf("failing trace written to %s", path)
}

// TestTracedAPIWorkloadChecksClean drives one of everything through a
// traced world on both backends: the checker must stay silent and its
// counts must reconcile with Stats().
func TestTracedAPIWorkloadChecksClean(t *testing.T) {
	for _, kind := range []BackendKind{BackendVTX, BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			m, ck := bootTracedWorld(t, kind)
			node := dom0MemNode(t, m)
			worker, err := m.CreateDomain(InitialDomain, "worker")
			if err != nil {
				t.Fatal(err)
			}
			enclave, err := m.CreateDomain(InitialDomain, "enclave")
			if err != nil {
				t.Fatal(err)
			}
			shared, err := m.Share(InitialDomain, node, worker, memRes(100, 2), cap.MemRW, cap.CleanFlushTLB)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Grant(InitialDomain, node, worker, memRes(120, 1), cap.MemRW, cap.CleanZero); err != nil {
				t.Fatal(err)
			}
			a := hw.NewAsm()
			a.Hlt()
			if err := m.CopyInto(InitialDomain, 64*pg, a.MustAssemble(64*pg)); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 1), cap.MemRWX, cap.CleanNone); err != nil {
				t.Fatal(err)
			}
			if err := m.SetEntry(InitialDomain, enclave, 64*pg); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Seal(InitialDomain, enclave); err != nil {
				t.Fatal(err)
			}
			if err := m.Revoke(InitialDomain, shared); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Attest(enclave, []byte("traced")); err != nil {
				t.Fatal(err)
			}
			if err := m.ForceKill(worker); err != nil {
				t.Fatal(err)
			}
			assertTraceClean(t, m, ck)
			if trace.Compiled {
				c := ck.Counts()
				if c.ForcedKills != 1 || c.Revocations < 1 || c.CapOps < 5 || c.PagesScrubbed < 1 {
					t.Fatalf("workload undercounted: %+v", c)
				}
				if kind == BackendVTX && c.Shootdowns == 0 {
					t.Fatal("CleanFlushTLB revoke produced no shootdown event")
				}
			}
		})
	}
}

// tracedWorldN boots a vtx world like bootWorld but with a chosen core
// count and a large-ring tracer, for golden-trace comparisons.
func tracedWorldN(t *testing.T, cores int) (*Monitor, *trace.Tracer, *check.Checker) {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: cores, PMPEntries: 16,
		IOMMUAllowByDefault: true,
		Devices:             []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: BackendVTX})
	if err != nil {
		t.Fatal(err)
	}
	tr := mach.NewTracer(1 << 15)
	ck := check.New()
	tr.Attach(ck)
	mach.SetTracer(tr)
	return m, tr, ck
}

// goldenFaultRun replays the canonical containment scenario — survivor
// on core 0, victim machine-checked on core 1 at instruction 137 —
// entirely from the test goroutine (sequential RunCore calls, so event
// order is schedule-determined) and returns the normalised trace.
func goldenFaultRun(t *testing.T, cores int) string {
	t.Helper()
	m, tr, ck := tracedWorldN(t, cores)
	victim := buildVictim(t, m)
	launchSurvivor(t, m)
	if res, err := m.RunCore(0, 100_000); err != nil || res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("survivor run = %+v, %v", res, err)
	}
	if err := m.Launch(victim, 1); err != nil {
		t.Fatal(err)
	}
	sched, err := fault.ParseSchedule("mc1@137")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(sched...)
	in.Arm(m.Machine(), nil)
	res, err := m.RunCore(1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("victim trap = %v, want machine-check", res.Trap)
	}
	if _, err := m.Attest(InitialDomain, []byte("golden")); err != nil {
		t.Fatal(err)
	}
	assertTraceClean(t, m, ck)
	return trace.Normalize(tr.Events(), cores)
}

// TestGoldenTraceDeterminism: the same (seed, schedule) pair must
// produce a bit-identical normalised trace on every run and on
// machines with more cores — replayability is what makes the trace a
// usable bug report. Runs under -race and -shuffle like everything
// else; the sequential driving makes the event order deterministic.
func TestGoldenTraceDeterminism(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	first := goldenFaultRun(t, 2)
	if strings.TrimSpace(first) == "" {
		t.Fatal("golden run produced an empty trace")
	}
	if again := goldenFaultRun(t, 2); again != first {
		t.Fatalf("same-shape replay diverged:\n--- first\n%s--- again\n%s", first, again)
	}
	if wide := goldenFaultRun(t, 4); wide != first {
		t.Fatalf("4-core replay diverged:\n--- 2 cores\n%s--- 4 cores\n%s", first, wide)
	}
}

// TestShootdownMutationOracle is the mutation test for the checker
// itself: under the tracebug build tag the hardware "forgets" to flush
// (and ack) the last core on every TLB shootdown, and the checker must
// flag the very first revocation. In normal builds the same run is
// clean — proof the oracle has teeth and no false positives.
func TestShootdownMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, hw.ShootdownBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	dom, err := m.CreateDomain(InitialDomain, "target")
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Share(InitialDomain, node, dom, memRes(130, 1), cap.MemRW, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	err = assertCheckersAgree(t, ck, sh)
	if hw.ShootdownBugArmed {
		if err == nil {
			t.Fatal("seeded shootdown bug (tracebug) not flagged by the checker")
		}
		if !strings.Contains(err.Error(), "acked by") {
			t.Fatalf("wrong violation for seeded bug: %v", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("clean revoke flagged: %v", err)
	}
}

// TestStatsSnapshotConsistent is the regression test for Stats()
// returning a coherent point-in-time snapshot: while workers loop
// share+revoke, every observed snapshot must satisfy the workload's
// algebra (each revoke is preceded by its share, both count as cap
// ops), which a torn read would break.
func TestStatsSnapshotConsistent(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	const workers = 4
	iters := 100
	if testing.Short() {
		iters = 20
	}
	doms := make([]DomainID, workers)
	for i := range doms {
		d, err := m.CreateDomain(InitialDomain, "snap")
		if err != nil {
			t.Fatal(err)
		}
		doms[i] = d
	}
	base := m.Stats()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				id, err := m.Share(InitialDomain, node, doms[i], memRes(uint64(140+i), 1), cap.MemRW, cap.CleanFlushTLB)
				if err != nil {
					t.Errorf("share: %v", err)
					return
				}
				if err := m.Revoke(InitialDomain, id); err != nil {
					t.Errorf("revoke: %v", err)
					return
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Shares and revokes alternate per worker, and each op bumps
			// capOps before revocations, so the *instantaneous* algebra is
			// 2·rev(t) ≤ cap(t) ≤ 2·rev(t) + 2·workers. Under the epoch
			// scheme Stats holds no exclusive lock, so a single snapshot's
			// two counters are read at different instants and can tear by
			// however many revokes complete in between. What stays
			// checkable is the linearizable bracket: a snapshot's CapOps
			// must fit the algebra against the Revocations of the
			// snapshots taken just before and just after it. A torn read
			// of a counter word itself would still blow this bound.
			s1 := m.Stats()
			s2 := m.Stats()
			s3 := m.Stats()
			cap2 := int64(s2.CapOps - base.CapOps)
			rev1 := int64(s1.Revocations - base.Revocations)
			rev3 := int64(s3.Revocations - base.Revocations)
			if cap2 < 2*rev1 || cap2 > 2*rev3+2*workers {
				t.Errorf("incoherent snapshot: capOps delta %d outside [2*%d, 2*%d+%d]",
					cap2, rev1, rev3, 2*workers)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	st := m.Stats()
	if got, want := st.Revocations-base.Revocations, uint64(workers*iters); got != want {
		t.Fatalf("revocations = %d, want %d", got, want)
	}
	assertTraceClean(t, m, ck)
}
