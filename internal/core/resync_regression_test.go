package core

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// requireFilterMatchesSpace asserts that a domain's per-core hardware
// filters agree with the capability space about addr. The fuzzer's
// isolation invariant samples pages at a stride, which is how the
// grantor-resync bug below hid for several releases.
func requireFilterMatchesSpace(t *testing.T, m *Monitor, id DomainID, addr phys.Addr) {
	t.Helper()
	capOK := m.CheckAccess(id, addr, cap.RightRead)
	for c := phys.CoreID(0); c < phys.CoreID(len(m.Machine().Cores)); c++ {
		ctx, err := m.DomainContext(id, id, c)
		if err != nil {
			t.Fatalf("domain %d context on core %d: %v", id, c, err)
		}
		if hwOK := ctx.Filter.Check(addr, hw.PermR); hwOK != capOK {
			t.Errorf("domain %d at %#x core %d: hardware=%v capability=%v",
				id, addr, c, hwOK, capOK)
		}
	}
}

// TestKillResyncsGrantorFilter: regression for a latent revocation bug
// found by FuzzMonitorAPI (kept as corpus seed-kill-grantor-resync).
// When a domain holding an exclusive Grant dies, Release restores the
// grantor's suspended access in the capability space — but the resync
// pass only rebuilt filters for owners named in the detach's cleanup
// actions, so the grantor's hardware filter permanently lacked the
// granted-back region (hardware=false while capability=true). The fix
// records the surviving parents at detach time (Detached.ParentOwners)
// and resynchronises them too, on the kill, revoke, and parallel-drain
// paths alike.
func TestKillResyncsGrantorFilter(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	base := phys.Addr(666 * pg)

	dom, err := m.CreateDomain(InitialDomain, "grantee")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, dom, cap.MemResource(phys.MakeRegion(base, pg)), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.KillDomain(InitialDomain, dom); err != nil {
		t.Fatal(err)
	}
	if !m.CheckAccess(InitialDomain, base, cap.RightRead) {
		t.Fatal("grantor did not regain capability access after grantee's death")
	}
	requireFilterMatchesSpace(t, m, InitialDomain, base)
}

// TestRevokeResyncsGrantorFilter: the same property through the revoke
// path — the grantor revokes its own grant and must see the region in
// hardware again immediately.
func TestRevokeResyncsGrantorFilter(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	base := phys.Addr(629 * pg)

	dom, err := m.CreateDomain(InitialDomain, "grantee")
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Grant(InitialDomain, node, dom, cap.MemResource(phys.MakeRegion(base, pg)), cap.MemRW, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	if !m.CheckAccess(InitialDomain, base, cap.RightRead) {
		t.Fatal("grantor did not regain capability access after revoking its grant")
	}
	requireFilterMatchesSpace(t, m, InitialDomain, base)
}
