package core

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
)

// serviceImage assembles the standard service payload: return r2+delta
// via CallReturn. Position-independent (no jumps).
func serviceImage(delta uint32) []byte {
	a := hw.NewAsm()
	a.Movi(3, delta)
	a.Add(1, 2, 3)
	a.Movi(0, uint32(CallReturn))
	a.Vmcall()
	a.Hlt()
	return a.MustAssemble(0)
}

// loadTestTenant builds a sealed service tenant at basePage on m and
// returns its ID and seal measurement.
func loadTestTenant(t *testing.T, m *Monitor, basePage uint64, delta uint32) DomainID {
	t.Helper()
	id, err := m.CreateDomain(InitialDomain, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	base := phys.Addr(basePage * pg)
	if err := m.CopyInto(InitialDomain, base, serviceImage(delta)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, dom0MemNode(t, m), id, memRes(basePage, 2), cap.MemRWX, cap.CleanZero); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, id, base); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMeasuredRegion(InitialDomain, id, phys.MakeRegion(base, pg)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	return id
}

// idleDom0 gives dom0 an entry point and parks it on core 0, so Call
// can invoke service domains from it.
func idleDom0(t *testing.T, m *Monitor) {
	t.Helper()
	a := hw.NewAsm()
	a.Hlt()
	if err := m.CopyInto(InitialDomain, 4*pg, a.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
}

// invokeService calls the tenant with arg on core 0 and returns r1.
func invokeService(t *testing.T, m *Monitor, id DomainID, arg uint64) uint64 {
	t.Helper()
	c := m.Machine().Core(0)
	c.Regs[2] = arg
	if err := m.Call(0, id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 1000); err != nil {
		t.Fatal(err)
	}
	return c.Regs[1]
}

// TestMigrationRoundTrip migrates a sealed service tenant between two
// identically-laid-out monitors: snapshot on A, restore at the same
// base on B, re-attestation (the recomputed seal measurement must
// reproduce the snapshot's), live invocation on B, then the departure
// kill on A with its forced scrub verified byte-for-byte.
func TestMigrationRoundTrip(t *testing.T) {
	mA, ckA := bootTracedWorld(t, BackendVTX)
	mB, ckB := bootTracedWorld(t, BackendVTX)
	const basePage, delta = 200, 5
	tenant := loadTestTenant(t, mA, basePage, delta)
	want, _ := func() (d [32]byte, e error) { dom, _ := mA.Domain(tenant); return dom.Measurement(), nil }()

	snap, err := mA.SnapshotDomain(tenant)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Base != basePage*pg || !snap.Sealed || len(snap.Regions) == 0 {
		t.Fatalf("snapshot shape: base %#x sealed %v regions %d", snap.Base, snap.Sealed, len(snap.Regions))
	}
	if snap.Measurement != want {
		t.Fatal("snapshot measurement != seal measurement")
	}

	restored, err := mB.RestoreDomain(InitialDomain, dom0MemNode(t, mB), []phys.CoreID{0}, snap)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := mB.Domain(restored)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Measurement() != want {
		t.Fatal("restored measurement != source measurement")
	}
	if mB.Stats().MigrationsIn != 1 || mA.Stats().MigrationsOut != 1 {
		t.Fatal("migration counters not tallied")
	}

	// The restored tenant serves on the destination.
	idleDom0(t, mB)
	if got := invokeService(t, mB, restored, 37); got != 37+delta {
		t.Fatalf("restored tenant returned %d, want %d", got, 37+delta)
	}

	// Departure: forced scrub erases the source copy.
	if err := mA.DepartKill(tenant); err != nil {
		t.Fatal(err)
	}
	if d, _ := mA.Domain(tenant); d.State() != StateDead {
		t.Fatal("departed tenant not dead")
	}
	view, err := mA.Machine().Mem.View(phys.MakeRegion(phys.Addr(basePage*pg), 2*pg))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range view {
		if b != 0 {
			t.Fatalf("departed tenant memory not scrubbed at +%#x", i)
		}
	}
	assertTraceClean(t, mA, ckA)
	assertTraceClean(t, mB, ckB)
}

// TestSnapshotRejectsUnmigratable covers the refusal surface: the
// initial domain, shared memory, and a half-state-free failed restore.
func TestSnapshotRejectsUnmigratable(t *testing.T) {
	mA, _ := bootTracedWorld(t, BackendVTX)
	if _, err := mA.SnapshotDomain(InitialDomain); !errors.Is(err, ErrNotMigratable) {
		t.Fatalf("snapshot of dom0: %v", err)
	}
	// A tenant sharing memory with dom0 is not migratable.
	id, err := mA.CreateDomain(InitialDomain, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mA.Share(InitialDomain, dom0MemNode(t, mA), id, memRes(300, 1), cap.MemRW|cap.RightShare, cap.CleanZero); err != nil {
		t.Fatal(err)
	}
	if _, err := mA.SnapshotDomain(id); !errors.Is(err, ErrNotMigratable) {
		t.Fatalf("snapshot of sharing domain: %v", err)
	}

	// A tampered snapshot fails re-attestation and leaves no half-state.
	mB, ckB := bootTracedWorld(t, BackendVTX)
	tenant := loadTestTenant(t, mA, 200, 1)
	snap, err := mA.SnapshotDomain(tenant)
	if err != nil {
		t.Fatal(err)
	}
	snap.Regions[0].Data[0] ^= 0xff // corrupt the measured code in flight
	before := len(mB.Domains())
	if _, err := mB.RestoreDomain(InitialDomain, dom0MemNode(t, mB), nil, snap); !errors.Is(err, ErrReattest) {
		t.Fatalf("tampered restore: %v", err)
	}
	if got := len(mB.Domains()); got != before {
		t.Fatalf("tampered restore left %d domains, want %d", got, before)
	}
	// The aborted restore's span is free again: a clean restore at the
	// same base succeeds.
	snap.Regions[0].Data[0] ^= 0xff
	if _, err := mB.RestoreDomain(InitialDomain, dom0MemNode(t, mB), nil, snap); err != nil {
		t.Fatal(err)
	}
	assertTraceClean(t, mB, ckB)
}

// TestMigrateSchedulerState migrates a mid-run scheduled tenant: the
// queued vCPU's saved registers and PC cross with the snapshot and the
// destination resumes it to completion via TransDispatch.
func TestMigrateSchedulerState(t *testing.T) {
	mA, ckA := bootTracedWorld(t, BackendVTX)
	mB, ckB := bootTracedWorld(t, BackendVTX)
	const basePage = 220
	base := phys.Addr(basePage * pg)

	// A yielding countdown loop: far more slices than the source budget
	// covers, so the vCPU is preempted mid-run (saved state in the
	// queue) when the snapshot is taken. Jumps resolve to absolute
	// addresses, so the same-base restore contract is load-bearing here.
	yieldLoop := func() []byte {
		a := hw.NewAsm()
		a.Movi(10, 400)
		a.Movi(12, 1)
		a.Label("loop")
		a.Movi(0, uint32(CallYield))
		a.Vmcall()
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		return a.MustAssemble(base)
	}
	id, err := mA.CreateDomain(InitialDomain, "looper")
	if err != nil {
		t.Fatal(err)
	}
	if err := mA.CopyInto(InitialDomain, base, yieldLoop()); err != nil {
		t.Fatal(err)
	}
	if _, err := mA.Grant(InitialDomain, dom0MemNode(t, mA), id, memRes(basePage, 1), cap.MemRWX, cap.CleanZero); err != nil {
		t.Fatal(err)
	}
	if err := mA.SetEntry(InitialDomain, id, base); err != nil {
		t.Fatal(err)
	}
	// The vCPU needs a core capability on the destination too; restore
	// shares destination cores explicitly, so none are delegated here —
	// dom0's core roots suffice for dispatch on A.
	coreNode, ok := mA.callerCoreNode(InitialDomain, 1)
	if !ok {
		t.Fatal("dom0 lost core 1")
	}
	if _, err := mA.Share(InitialDomain, coreNode, id, cap.CoreResource(1), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}

	mA.SetSchedPolicy(&sched.Policy{Quantum: 32, Seed: 1})
	if err := mA.Schedule(id); err != nil {
		t.Fatal(err)
	}
	// Run a couple of slices — not enough to finish — so the vCPU is
	// requeued Started with saved state.
	if _, err := mA.RunCores(70, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := mA.SnapshotDomain(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.VCPUs) != 1 || !snap.VCPUs[0].Started {
		t.Fatalf("snapshot vCPUs = %+v, want one started", snap.VCPUs)
	}
	if err := mA.DepartKill(id); err != nil {
		t.Fatal(err)
	}

	mB.SetSchedPolicy(&sched.Policy{Quantum: 32, Seed: 1})
	restored, err := mB.RestoreDomain(InitialDomain, dom0MemNode(t, mB), []phys.CoreID{1}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mB.RunCores(10_000, 1); err != nil {
		t.Fatal(err)
	}
	if st := mB.Stats(); st.SchedCompleted != 1 {
		t.Fatalf("restored vCPU did not run to completion: %+v", st)
	}
	if d, _ := mB.Domain(restored); d.State() == StateDead {
		t.Fatal("restored domain died")
	}
	assertTraceClean(t, mA, ckA)
	assertTraceClean(t, mB, ckB)
}
