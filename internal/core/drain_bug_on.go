//go:build drainbug

package core

// DrainBugArmed: this binary was built with the drainbug tag — the
// parallel drain round skips cross-ring coalescing for its first
// deferred revocation, whose flush cleanups then retire as immediate
// unbatched shootdown rounds inside the drain frame. A deliberately
// broken build: the mutation test proves both the serial and the
// sharded incremental checker flag the property-6 violation.
const DrainBugArmed = true
