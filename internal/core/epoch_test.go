package core

// Tests for the epoch-based reclamation engine (epoch.go) and its
// integration with the destructive family. Three layers:
//
//   - Engine-level unit tests: deferred frees never run before
//     quiescence, FIFO order holds, the QSBR core gate participates,
//     and synchronize genuinely waits for pinned readers.
//   - Monitor-level tests: the per-core counters advance at the
//     scheduler's round barriers and at ring-drain doorbells, and limbo
//     capability records drain back to zero after revocations.
//   - The mutation oracle: with the epochbug build tag the grace period
//     is compiled out, and the trace checker must flag the resulting
//     premature reclaim (a reader's event landing after its domain's
//     KKill) — proof the linearizability harness has teeth.
//
// The concurrency stress test at the bottom is the linearizability
// harness itself: lock-free readers race revoke/kill storms; run it
// under -race (the CI race and epoch jobs do), in both the fine and
// biglock builds.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/trace"
)

// TestEpochEngineDeferGating: a deferred free must not run while any
// reader is pinned at or before the epoch it was recorded in, and
// batches run in FIFO order once quiescence opens.
func TestEpochEngineDeferGating(t *testing.T) {
	if EpochBugArmed {
		t.Skip("epochbug build compiles the grace period out by design")
	}
	var e epochEngine
	e.init()

	p := e.pin()
	var order []int
	e.deferFree(func() { order = append(order, 1) })
	e.deferFree(func() { order = append(order, 2) })

	// A quiescent stamp from an offline core must not reclaim anything
	// while the pin is held.
	e.quiesce(0)
	if got := e.reclaimed.Load(); got != 0 {
		t.Fatalf("reclaimed %d frees under an active pin", got)
	}
	e.unpin(p)
	e.synchronize()
	if got := e.reclaimed.Load(); got != 2 {
		t.Fatalf("reclaimed = %d after quiescence, want 2", got)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("deferred frees ran out of FIFO order: %v", order)
	}
}

// TestEpochEngineCoreGating: an online core that has not stamped a
// quiescent point since the free was deferred blocks reclamation — the
// QSBR side channel is a real gate, not advisory.
func TestEpochEngineCoreGating(t *testing.T) {
	if EpochBugArmed {
		t.Skip("epochbug build compiles the grace period out by design")
	}
	var e epochEngine
	e.init()
	e.setOnline(3, true)

	ran := atomic.Bool{}
	e.deferFree(func() { ran.Store(true) })
	// No pins, but core 3 is online and stamped at the deferral epoch:
	// two grace periods must still not reclaim.
	e.synchronize()
	e.synchronize()
	if ran.Load() {
		t.Fatal("deferred free ran before the online core quiesced")
	}
	e.quiesce(3)
	if !ran.Load() {
		t.Fatal("deferred free did not run after the last core quiesced")
	}
	e.setOnline(3, false)
}

// TestEpochSynchronizeWaitsForReader: synchronize must not return while
// a reader pinned before it remains pinned.
func TestEpochSynchronizeWaitsForReader(t *testing.T) {
	if EpochBugArmed {
		t.Skip("epochbug build compiles the grace period out by design")
	}
	var e epochEngine
	e.init()

	p := e.pin()
	done := make(chan struct{})
	go func() {
		e.synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("synchronize returned while a reader was pinned")
	case <-time.After(20 * time.Millisecond):
	}
	e.unpin(p)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("synchronize did not return after the reader unpinned")
	}
}

// TestEpochQuiescentPointsAdvance: the per-core QSBR counters are
// stamped at the two places the tentpole names — the multi-tenant
// scheduler's round barriers and the ring-drain doorbell
// (CallRingFlush) — so deferred reclamation makes progress even when no
// further revocation ever calls synchronize.
func TestEpochQuiescentPointsAdvance(t *testing.T) {
	m := bootWorld(t, BackendVTX)

	// Ring-drain doorbell: an on-core flush stamps the executing core.
	base := phys.Addr(8 * pg)
	if err := m.RingSetup(InitialDomain, base, 8); err != nil {
		t.Fatal(err)
	}
	before := m.EpochStats().Advances
	if _, err := m.ringFlush(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.EpochStats().Advances; got <= before {
		t.Fatalf("ring-drain doorbell did not stamp a quiescent point (advances %d -> %d)", before, got)
	}

	// Scheduler round barriers: a short multi-tenant run stamps every
	// participating core at least once per round.
	m.SetSchedPolicy(&sched.Policy{Quantum: 16})
	id := loadTenant(t, m, "epoch-tenant", 64, 8, true, []phys.CoreID{0, 1})
	if err := m.Schedule(id); err != nil {
		t.Fatal(err)
	}
	before = m.EpochStats().Advances
	if _, err := m.RunCores(100_000); err != nil {
		t.Fatal(err)
	}
	if got := m.EpochStats().Advances; got <= before {
		t.Fatalf("scheduled round barriers did not stamp quiescent points (advances %d -> %d)", before, got)
	}
}

// TestEpochReclaimAfterRevoke: detached capability records sit in limbo
// until a full grace period elapses, then every deferred free runs —
// nothing leaks and nothing reclaims early.
func TestEpochReclaimAfterRevoke(t *testing.T) {
	if EpochBugArmed {
		t.Skip("epochbug reclaims immediately by design")
	}
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	dom, err := m.CreateDomain(InitialDomain, "limbo")
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Share(InitialDomain, node, dom, memRes(160, 1), cap.MemRW, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	// The revoke deferred its subtree's reclamation at the post-sync
	// epoch: it cannot have run inside its own grace period.
	if got := m.space.LimboNodes(); got == 0 {
		t.Fatal("revoked subtree reclaimed inside its own operation")
	}
	st := m.EpochStats()
	if st.Deferred == 0 || st.Reclaimed >= st.Deferred {
		t.Fatalf("epoch stats inconsistent after revoke: %+v", st)
	}
	// Two explicit grace periods retire the pending batch.
	m.ep.synchronize()
	m.ep.synchronize()
	if got := m.space.LimboNodes(); got != 0 {
		t.Fatalf("%d capability records still in limbo after quiescence", got)
	}
	st = m.EpochStats()
	if st.Reclaimed != st.Deferred {
		t.Fatalf("reclaimed %d of %d deferred frees after quiescence", st.Reclaimed, st.Deferred)
	}
}

// TestEpochMutationOracle is the mutation test for the reclamation
// scheme: under the epochbug build tag synchronize skips its wait (a
// seeded premature reclaim, the PR-3 tracebug pattern applied to EBR),
// and the trace checker must flag it. The scenario parks a delegation
// by the victim mid-operation — capability mutated, trace event not yet
// emitted, epoch pin held — while a ForceKill runs against it:
//
//   - Correct engine: the kill's grace period waits for the parked
//     entry, so its KShare lands before the KKill and the trace is
//     clean.
//   - epochbug: the kill completes through the open pin; the parked
//     entry then emits KShare for a domain the trace already killed —
//     a dead-domain-silence violation the checker must catch.
func TestEpochMutationOracle(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	if BigLockBuild {
		t.Skip("biglock serialises all entries; the grace period is vacuous")
	}
	skipUnlessOnlyMutation(t, EpochBugArmed)
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	victim, err := m.CreateDomain(InitialDomain, "victim")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Share(InitialDomain, node, victim, memRes(170, 2), cap.MemRW|cap.RightShare, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}

	parked := make(chan struct{})
	release := make(chan struct{})
	m.hookDelegatePreEmit = func(DomainID) {
		close(parked)
		<-release
	}
	shareErr := make(chan error, 1)
	go func() {
		_, err := m.Share(victim, a, InitialDomain, memRes(170, 1), cap.MemRW, cap.CleanNone)
		shareErr <- err
	}()
	<-parked
	killErr := make(chan error, 1)
	go func() { killErr <- m.ForceKill(victim) }()
	// Give the kill time to publish death and enter (or, with epochbug,
	// charge straight through) its grace period before unparking.
	time.Sleep(30 * time.Millisecond)
	close(release)
	if err := <-killErr; err != nil {
		t.Fatalf("ForceKill: %v", err)
	}
	// With the bug armed the kill reclaims straight through the open
	// pin, so the parked entry's hardware resync may find its domain
	// already gone — part of the blast the checker must flag (the
	// KShare violation has landed by then regardless).
	if err := <-shareErr; err != nil && !EpochBugArmed {
		t.Fatalf("parked share: %v", err)
	}
	m.hookDelegatePreEmit = nil

	err = assertCheckersAgree(t, ck, sh)
	if EpochBugArmed {
		if err == nil {
			t.Fatal("seeded premature reclaim (epochbug) not flagged by the checker")
		}
		return
	}
	if err != nil {
		t.Fatalf("clean kill-vs-delegation race flagged: %v", err)
	}
}

// TestEpochLinearizableRevokeStorm is the linearizability harness:
// reader goroutines run lock-free monitor entries (access checks,
// attestation, stats, enumeration) while workers storm the destructive
// family with revoke and kill cycles over two-level capability
// subtrees. The readers assert that no half-detached subtree is ever
// observable and that unrelated domains never flicker; each worker
// asserts the linearization point — when a revoke or kill returns, the
// whole subtree is gone. The trace oracle then replays the run against
// the dead-domain-silence and scrub ordering invariants.
func TestEpochLinearizableRevokeStorm(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	const workers = 4
	iters := 24
	if testing.Short() {
		iters = 6
	}
	// The nightly full-churn soak leg raises the budget far beyond the
	// per-push run (see .github/workflows/nightly.yml).
	if v := os.Getenv("EPOCH_STORM_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("invalid EPOCH_STORM_ITERS=%q", v)
		}
		iters = n
	}

	// A bystander with a stable mapping: storms on unrelated subtrees
	// must never disturb it, not even transiently.
	bystander, err := m.CreateDomain(InitialDomain, "bystander")
	if err != nil {
		t.Fatal(err)
	}
	byRegion := phys.MakeRegion(phys.Addr(400*pg), pg)
	if _, err := m.Share(InitialDomain, node, bystander, cap.MemResource(byRegion), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}

	// Long-lived per-worker "cell" domains receive the second level of
	// each victim subtree, so every revoke cascades across owners.
	var cells [workers]DomainID
	for i := range cells {
		cells[i], err = m.CreateDomain(InitialDomain, fmt.Sprintf("cell%d", i))
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	readerErr := make(chan error, 8)
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var lastRevs uint64
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if !m.CheckAccess(InitialDomain, 0, cap.MemRWX) {
					readerErr <- fmt.Errorf("dom0 lost its root capability mid-storm")
					return
				}
				if !m.CheckAccess(bystander, byRegion.Start, cap.MemRW) {
					readerErr <- fmt.Errorf("bystander access flickered mid-storm")
					return
				}
				st := m.Stats()
				if st.Revocations < lastRevs {
					readerErr <- fmt.Errorf("revocation counter went backwards: %d -> %d", lastRevs, st.Revocations)
					return
				}
				lastRevs = st.Revocations
				es := m.EpochStats()
				if es.Reclaimed > es.Deferred {
					readerErr <- fmt.Errorf("reclaimed %d > deferred %d", es.Reclaimed, es.Deferred)
					return
				}
				if _, err := m.Enumerate(InitialDomain); err != nil {
					readerErr <- fmt.Errorf("enumerate dom0: %v", err)
					return
				}
				if n%8 == r {
					if _, err := m.Attest(bystander, []byte{byte(n)}); err != nil {
						readerErr <- fmt.Errorf("bystander attest failed mid-storm: %v", err)
						return
					}
				}
			}
		}(r)
	}

	var wg sync.WaitGroup
	workerErr := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			region := phys.MakeRegion(phys.Addr(uint64(300+4*i)*pg), 2*pg)
			sub := phys.MakeRegion(region.Start+pg, pg)
			for n := 0; n < iters; n++ {
				v, err := m.CreateDomain(InitialDomain, fmt.Sprintf("victim%d-%d", i, n))
				if err != nil {
					workerErr <- err
					return
				}
				a, err := m.Share(InitialDomain, node, v, cap.MemResource(region), cap.MemRW|cap.RightShare, cap.CleanFlushTLB)
				if err != nil {
					workerErr <- err
					return
				}
				if _, err := m.Share(v, a, cells[i], cap.MemResource(sub), cap.MemRW, cap.CleanFlushTLB); err != nil {
					workerErr <- err
					return
				}
				if !m.CheckAccess(cells[i], sub.Start, cap.MemRW) {
					workerErr <- fmt.Errorf("worker %d: cell lost access before revoke", i)
					return
				}
				if n%2 == 0 {
					err = m.Revoke(InitialDomain, a)
				} else {
					err = m.KillDomain(InitialDomain, v)
				}
				if err != nil {
					workerErr <- err
					return
				}
				// Linearization point: the revoke/kill has returned, so
				// the whole two-level subtree must be invisible — a
				// surviving second-level grant would be a half-detached
				// subtree.
				if m.CheckAccess(v, region.Start, cap.MemRW) {
					workerErr <- fmt.Errorf("worker %d iter %d: victim retains access after teardown returned", i, n)
					return
				}
				if m.CheckAccess(cells[i], sub.Start, cap.MemRW) {
					workerErr <- fmt.Errorf("worker %d iter %d: half-detached subtree (cell retains cascaded grant)", i, n)
					return
				}
				if n%2 == 1 {
					if nodes := m.OwnerNodes(v); len(nodes) != 0 {
						workerErr <- fmt.Errorf("worker %d iter %d: killed domain still owns %d nodes", i, n, len(nodes))
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	close(workerErr)
	close(readerErr)
	for err := range workerErr {
		t.Fatal(err)
	}
	for err := range readerErr {
		t.Fatal(err)
	}

	// Quiesce twice: everything the storm deferred must reclaim, and
	// the hammered regions must be exclusive to dom0 again.
	m.ep.synchronize()
	m.ep.synchronize()
	if got := m.space.LimboNodes(); got != 0 {
		t.Fatalf("%d capability records leaked in limbo after the storm", got)
	}
	for _, rc := range m.RefCounts() {
		for i := 0; i < workers; i++ {
			region := phys.MakeRegion(phys.Addr(uint64(300+4*i)*pg), 2*pg)
			if rc.Region.Overlaps(region) && rc.Count != 1 {
				t.Fatalf("region %v refcount = %d after storm", rc.Region, rc.Count)
			}
		}
	}
	assertTraceClean(t, m, ck)
}
