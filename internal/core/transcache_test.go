package core

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
)

// tcWorld boots a world with dom0 current on core 0 and a callable
// enclave (entry set, core capability shared), the minimal shape for
// mediated Call/Return.
func tcWorld(t *testing.T, kind BackendKind) (*Monitor, DomainID, cap.NodeID) {
	t.Helper()
	m := bootWorld(t, kind)
	node := dom0MemNode(t, m)
	enclave, err := m.CreateDomain(InitialDomain, "enclave")
	if err != nil {
		t.Fatal(err)
	}
	a := hw.NewAsm()
	a.Hlt()
	if err := m.CopyInto(InitialDomain, 64*pg, a.MustAssemble(64*pg)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 1), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, 64*pg); err != nil {
		t.Fatal(err)
	}
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}
	if _, err := m.Share(InitialDomain, coreNode, enclave, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	return m, enclave, node
}

// TestTransitionCachePinnedHitMiss pins the exact hit/miss counts of a
// call/return workload around the two invalidation channels: a Revoke
// that bumps the capability-space generation, and a SetEntry that bumps
// the target's config generation. Misses must land exactly where the
// generations moved — no phantom hits across an invalidation, no
// phantom misses while the world is quiet.
func TestTransitionCachePinnedHitMiss(t *testing.T) {
	m, enclave, node := tcWorld(t, BackendVTX)
	m.SetTransitionCache(true)

	const N = 8
	callRet := func() {
		t.Helper()
		if err := m.Call(0, enclave); err != nil {
			t.Fatal(err)
		}
		if err := m.Return(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < N; i++ {
		callRet()
	}
	// First call misses and fills; the fill covers the paired return, so
	// everything after is a hit: 2N-1 hits, 1 miss.
	st := m.Stats()
	if st.TransCacheHits != 2*N-1 || st.TransCacheMisses != 1 {
		t.Fatalf("after %d pairs: hits=%d misses=%d, want %d/1",
			N, st.TransCacheHits, st.TransCacheMisses, 2*N-1)
	}

	// Channel 1: a Revoke bumps the capability-space generation; the
	// very next switch must miss the cache and revalidate.
	sh, err := m.Share(InitialDomain, node, enclave, memRes(100, 1), cap.MemRW, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, sh); err != nil {
		t.Fatal(err)
	}
	callRet()
	st = m.Stats()
	if st.TransCacheHits != 2*N || st.TransCacheMisses != 2 {
		t.Fatalf("after revoke: hits=%d misses=%d, want %d/2",
			st.TransCacheHits, st.TransCacheMisses, 2*N)
	}

	// Channel 2: SetEntry bumps only the enclave's config generation
	// (the capability space is untouched) — still a guaranteed miss.
	if err := m.SetEntry(InitialDomain, enclave, 64*pg); err != nil {
		t.Fatal(err)
	}
	callRet()
	st = m.Stats()
	if st.TransCacheHits != 2*N+1 || st.TransCacheMisses != 3 {
		t.Fatalf("after setentry: hits=%d misses=%d, want %d/3",
			st.TransCacheHits, st.TransCacheMisses, 2*N+1)
	}

	// Quiet world again: pure hits.
	callRet()
	st = m.Stats()
	if st.TransCacheHits != 2*N+3 || st.TransCacheMisses != 3 {
		t.Fatalf("quiet pair: hits=%d misses=%d, want %d/3",
			st.TransCacheHits, st.TransCacheMisses, 2*N+3)
	}
}

// TestTransitionCacheCycleCost: a cached switch costs the VMFunc tariff
// (~100 cycles, §4.1), not the exit/entry round trip the slow path
// pays — the C2 number the cache exists for.
func TestTransitionCacheCycleCost(t *testing.T) {
	m, enclave, _ := tcWorld(t, BackendVTX)
	cost := m.Machine().Cost
	m.SetTransitionCache(true)

	// Fill.
	if err := m.Call(0, enclave); err != nil {
		t.Fatal(err)
	}
	if err := m.Return(0); err != nil {
		t.Fatal(err)
	}
	before := m.Machine().Clock.Cycles()
	if err := m.Call(0, enclave); err != nil {
		t.Fatal(err)
	}
	hitCost := m.Machine().Clock.Cycles() - before
	if err := m.Return(0); err != nil {
		t.Fatal(err)
	}
	if hitCost > 2*cost.VMFunc {
		t.Fatalf("cached switch cost %d cycles, want ~VMFunc (%d)", hitCost, cost.VMFunc)
	}

	// The uncached switch pays the full round trip.
	m.SetTransitionCache(false)
	before = m.Machine().Clock.Cycles()
	if err := m.Call(0, enclave); err != nil {
		t.Fatal(err)
	}
	slowCost := m.Machine().Clock.Cycles() - before
	if err := m.Return(0); err != nil {
		t.Fatal(err)
	}
	if slowCost < cost.VMExit+cost.VMEntry {
		t.Fatalf("slow switch cost %d cycles, want >= %d", slowCost, cost.VMExit+cost.VMEntry)
	}
	if hitCost*5 > slowCost {
		t.Fatalf("cached/slow = %d/%d cycles: less than the 5x the cache promises", hitCost, slowCost)
	}
}

// TestTransitionCachePMPNeverCaches: a backend with no VMFUNC analogue
// refuses fast-pair registration, so the cache degrades to counted
// misses with fully correct slow-path behavior.
func TestTransitionCachePMPNeverCaches(t *testing.T) {
	m, enclave, _ := tcWorld(t, BackendPMP)
	m.SetTransitionCache(true)
	const N = 4
	for i := 0; i < N; i++ {
		if err := m.Call(0, enclave); err != nil {
			t.Fatal(err)
		}
		if err := m.Return(0); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.TransCacheHits != 0 || st.TransCacheMisses != 2*N {
		t.Fatalf("pmp: hits=%d misses=%d, want 0/%d", st.TransCacheHits, st.TransCacheMisses, 2*N)
	}
}

// TestTransitionCacheOffIsFree: with the cache disabled (the default)
// no counter moves — the opt-in leaves the pre-cache path untouched.
func TestTransitionCacheOffIsFree(t *testing.T) {
	m, enclave, _ := tcWorld(t, BackendVTX)
	for i := 0; i < 3; i++ {
		if err := m.Call(0, enclave); err != nil {
			t.Fatal(err)
		}
		if err := m.Return(0); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.TransCacheHits != 0 || st.TransCacheMisses != 0 {
		t.Fatalf("default-off moved counters: hits=%d misses=%d", st.TransCacheHits, st.TransCacheMisses)
	}
}

// TestTransitionCacheDeadTarget: killing the callee makes every cached
// entry for it unusable even before any generation comparison — a dead
// domain is never switched into.
func TestTransitionCacheDeadTarget(t *testing.T) {
	m, enclave, _ := tcWorld(t, BackendVTX)
	m.SetTransitionCache(true)
	if err := m.Call(0, enclave); err != nil {
		t.Fatal(err)
	}
	if err := m.Return(0); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceKill(enclave); err != nil {
		t.Fatal(err)
	}
	if err := m.Call(0, enclave); err == nil {
		t.Fatal("call into a dead domain succeeded via the cache")
	}
}
