package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

func bootWorld(t testing.TB, kind BackendKind) *Monitor {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: 2, PMPEntries: 16,
		IOMMUAllowByDefault: true,
		Devices:             []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: kind})
	if err != nil {
		t.Fatalf("Boot(%s): %v", kind, err)
	}
	return m
}

func dom0MemNode(t testing.TB, m *Monitor) cap.NodeID {
	t.Helper()
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			return n.ID
		}
	}
	t.Fatal("dom0 has no memory capability")
	return 0
}

func memRes(startPage, pages uint64) cap.Resource {
	return cap.MemResource(phys.MakeRegion(phys.Addr(startPage*pg), pages*pg))
}

func TestBootState(t *testing.T) {
	for _, kind := range []BackendKind{BackendVTX, BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			m := bootWorld(t, kind)
			if m.Backend() != string(kind) {
				t.Fatalf("backend = %s", m.Backend())
			}
			// Initial domain owns everything below the monitor region.
			mon := m.MonitorRegion()
			if !m.CheckAccess(InitialDomain, 0, cap.MemRWX) {
				t.Fatal("dom0 missing low memory")
			}
			if m.CheckAccess(InitialDomain, mon.Start, cap.RightRead) {
				t.Fatal("dom0 can reach monitor memory")
			}
			// IOMMU flipped to deny-by-default at boot.
			if m.Machine().IOMMU.DefaultAllow {
				t.Fatal("IOMMU still in commodity default")
			}
			if len(m.Domains()) != 1 || m.Domains()[0] != InitialDomain {
				t.Fatalf("domains = %v", m.Domains())
			}
			d, err := m.Domain(InitialDomain)
			if err != nil || d.Name() != "dom0" || d.State() != StateActive {
				t.Fatalf("dom0 = %v, %v", d, err)
			}
		})
	}
}

func TestBootValidation(t *testing.T) {
	if _, err := Boot(BootConfig{}); err == nil {
		t.Fatal("boot without machine/TPM must fail")
	}
	mach, _ := hw.NewMachine(hw.Config{MemBytes: 1 << 20, NumCores: 1})
	rot, _ := tpm.New(nil)
	if _, err := Boot(BootConfig{Machine: mach, TPM: rot, MonitorReserve: 2 << 20}); err == nil {
		t.Fatal("reserve larger than memory must fail")
	}
	if _, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: "weird"}); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

func TestDomainLifecycle(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	enclave, err := m.CreateDomain(InitialDomain, "enclave")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)

	// Load a tiny program into pages 64..65 while dom0 still owns them.
	prog := hw.NewAsm()
	prog.Movi(0, uint32(CallLog)).Movi(1, 7).Vmcall().Hlt()
	code := prog.MustAssemble(phys.Addr(64 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(64*pg), code); err != nil {
		t.Fatal(err)
	}

	// Grant the enclave its memory exclusively, with obliterating
	// revocation.
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 2), cap.MemRWX, cap.CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	// dom0 lost access — even though it is the privileged OS domain.
	if m.CheckAccess(InitialDomain, phys.Addr(64*pg), cap.RightRead) {
		t.Fatal("privileged domain retains access to enclave memory")
	}
	if _, err := m.CopyFrom(InitialDomain, phys.Addr(64*pg), 8); !errors.Is(err, ErrDenied) {
		t.Fatalf("CopyFrom should be denied, got %v", err)
	}

	// Share a core, set entry, measure, seal.
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 1 {
			coreNode = n.ID
		}
	}
	if _, err := m.Share(InitialDomain, coreNode, enclave, cap.CoreResource(1), cap.RightRun, cap.CleanFlushCache); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMeasuredRegion(InitialDomain, enclave, phys.MakeRegion(phys.Addr(64*pg), pg)); err != nil {
		t.Fatal(err)
	}
	meas, err := m.Seal(InitialDomain, enclave)
	if err != nil {
		t.Fatal(err)
	}
	if meas == (tpm.Digest{}) {
		t.Fatal("zero measurement after seal")
	}
	d, _ := m.Domain(enclave)
	if d.State() != StateSealed || d.Measurement() != meas {
		t.Fatalf("domain after seal = %v", d)
	}
	// Sealed: no more resources.
	if _, err := m.Share(InitialDomain, node, enclave, memRes(100, 1), cap.MemRW, cap.CleanNone); err == nil {
		t.Fatal("sealed domain received a share")
	}
	// Double seal fails.
	if _, err := m.Seal(InitialDomain, enclave); !errors.Is(err, ErrSealedState) {
		t.Fatalf("double seal: %v", err)
	}

	// Run it: the enclave logs 7 and halts.
	if err := m.Launch(enclave, 1); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", res.Trap)
	}
	if log := d.Log(); len(log) != 1 || log[0] != 7 {
		t.Fatalf("log = %v", log)
	}

	// Kill: memory is zeroed (CleanObfuscate) and returns to dom0.
	if err := m.KillDomain(InitialDomain, enclave); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateDead {
		t.Fatal("domain not dead")
	}
	if !m.CheckAccess(InitialDomain, phys.Addr(64*pg), cap.RightRead) {
		t.Fatal("dom0 did not regain memory")
	}
	buf, err := m.CopyFrom(InitialDomain, phys.Addr(64*pg), uint64(len(code)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, len(code))) {
		t.Fatal("enclave memory not zeroed on kill")
	}
	// Dead domains reject everything.
	if _, err := m.CreateDomain(enclave, "zombie-child"); !errors.Is(err, ErrDead) {
		t.Fatalf("create from dead: %v", err)
	}
}

func TestEnclaveIsolationEnforcedInHardware(t *testing.T) {
	// The C8 scenario in miniature: dom0 (privileged) runs interpreted
	// code that tries to read enclave memory; under the monitor the
	// access faults in hardware, not just in API checks.
	for _, kind := range []BackendKind{BackendVTX, BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			m := bootWorld(t, kind)
			enclave, err := m.CreateDomain(InitialDomain, "enclave")
			if err != nil {
				t.Fatal(err)
			}
			node := dom0MemNode(t, m)
			if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 2), cap.MemRWX, cap.CleanObfuscate); err != nil {
				t.Fatal(err)
			}
			// dom0 program: read enclave page (should fault).
			attack := hw.NewAsm()
			attack.Movi(1, uint32(64*pg)).Ld(2, 1, 0).Hlt()
			code := attack.MustAssemble(phys.Addr(4 * pg))
			if err := m.CopyInto(InitialDomain, phys.Addr(4*pg), code); err != nil {
				t.Fatal(err)
			}
			if err := m.SetEntry(InitialDomain, InitialDomain, phys.Addr(4*pg)); err != nil {
				t.Fatal(err)
			}
			if err := m.Launch(InitialDomain, 0); err != nil {
				t.Fatal(err)
			}
			res, err := m.RunCore(0, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap.Kind != hw.TrapFault || res.Trap.Addr != phys.Addr(64*pg) {
				t.Fatalf("trap = %v, want fault at enclave page", res.Trap)
			}
		})
	}
}

func TestMediatedCallReturn(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	enclave, err := m.CreateDomain(InitialDomain, "enclave")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)

	// Enclave program at page 64: add 1 to the payload in r2, return it
	// in r1 (r1 carried the call target on entry).
	enc := hw.NewAsm()
	enc.Movi(3, 1)
	enc.Add(1, 2, 3) // r1 = payload + 1
	enc.Movi(0, uint32(CallReturn))
	enc.Vmcall()
	enc.Hlt() // unreachable
	encCode := enc.MustAssemble(phys.Addr(64 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(64*pg), encCode); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 1), cap.MemRWX, cap.CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	// Enclave runs on core 0 (shared with dom0).
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}
	if _, err := m.Share(InitialDomain, coreNode, enclave, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(InitialDomain, enclave); err != nil {
		t.Fatal(err)
	}

	// dom0 program at page 4: call the enclave with payload 42 in r2,
	// log the returned r1, halt.
	hostCode := buildCaller(t, enclave)
	if err := m.CopyInto(InitialDomain, phys.Addr(4*pg), hostCode); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, phys.Addr(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt || res.Domain != InitialDomain {
		t.Fatalf("final trap = %v in domain %d", res.Trap, res.Domain)
	}
	d0, _ := m.Domain(InitialDomain)
	if log := d0.Log(); len(log) != 1 || log[0] != 43 {
		t.Fatalf("log = %v, want [43]", log)
	}
	st := m.Stats()
	if st.Transitions < 2 {
		t.Fatalf("transitions = %d, want >= 2 (call + return)", st.Transitions)
	}
}

// buildCaller assembles a dom0 program that calls target with payload
// 42 in r2 (r1 carries the call target per the ABI), then logs the
// returned r1.
func buildCaller(t testing.TB, target DomainID) []byte {
	t.Helper()
	a := hw.NewAsm()
	a.Movi(0, uint32(CallDomainCall))
	a.Movi(1, uint32(target))
	a.Movi(2, 42)
	a.Vmcall() // call; resumes here after return with r0=0, r1=retval
	a.Movi(0, uint32(CallLog))
	a.Vmcall() // logs r1
	a.Hlt()
	return a.MustAssemble(phys.Addr(4 * pg))
}

func TestFastSwitchPath(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	comp, err := m.CreateDomain(InitialDomain, "compartment")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	// Compartment: log 5, halt.
	prog := hw.NewAsm()
	prog.Movi(0, uint32(CallLog)).Movi(1, 5).Vmcall().Hlt()
	code := prog.MustAssemble(phys.Addr(64 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(64*pg), code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, comp, memRes(64, 1), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}
	if _, err := m.Share(InitialDomain, coreNode, comp, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, comp, phys.Addr(64*pg)); err != nil {
		t.Fatal(err)
	}

	// Fast path must be registered first.
	if err := m.FastSwitch(0, comp); err == nil {
		t.Fatal("unregistered fast switch succeeded")
	}
	// Registration by a non-endpoint is denied.
	if err := m.RegisterFastPath(comp, InitialDomain, comp, 0); err != nil {
		t.Fatal(err) // comp IS an endpoint: allowed
	}
	stranger, _ := m.CreateDomain(InitialDomain, "stranger")
	if err := m.RegisterFastPath(stranger, InitialDomain, comp, 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("non-endpoint registration: %v", err)
	}

	// dom0 idles at page 4.
	idle := hw.NewAsm()
	idle.Hlt()
	if err := m.CopyInto(InitialDomain, phys.Addr(4*pg), idle.MustAssemble(phys.Addr(4*pg))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, phys.Addr(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	before := m.Machine().Clock.Cycles()
	if err := m.FastSwitch(0, comp); err != nil {
		t.Fatal(err)
	}
	cost := m.Machine().Clock.Cycles() - before
	if cost != m.Machine().Cost.VMFunc {
		t.Fatalf("fast switch cost = %d, want %d", cost, m.Machine().Cost.VMFunc)
	}
	res, err := m.RunCore(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt || res.Domain != comp {
		t.Fatalf("res = %+v", res)
	}
	d, _ := m.Domain(comp)
	if log := d.Log(); len(log) != 1 || log[0] != 5 {
		t.Fatalf("log = %v", log)
	}
	if m.Stats().FastSwitches != 1 {
		t.Fatalf("fast switches = %d", m.Stats().FastSwitches)
	}
}

func TestSyscallDispatch(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	// dom0 kernel handler: doubles r1.
	if err := m.SetSyscallHandler(InitialDomain, InitialDomain, func(c *hw.Core) error {
		c.Regs[1] *= 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	prog := hw.NewAsm()
	prog.Movi(1, 21).Syscall()
	prog.Movi(0, uint32(CallLog)).Vmcall().Hlt()
	code := prog.MustAssemble(phys.Addr(4 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(4*pg), code); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, phys.Addr(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 100); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Domain(InitialDomain)
	if log := d.Log(); len(log) != 1 || log[0] != 42 {
		t.Fatalf("log = %v, want [42]", log)
	}
	if m.Stats().Syscalls != 1 {
		t.Fatalf("syscalls = %d", m.Stats().Syscalls)
	}
}

func TestRevokeAuthorization(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a, _ := m.CreateDomain(InitialDomain, "a")
	b, _ := m.CreateDomain(InitialDomain, "b")
	node := dom0MemNode(t, m)
	shared, err := m.Share(InitialDomain, node, a, memRes(64, 2), cap.MemRW|cap.RightShare, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	// Domain b (unrelated) cannot revoke a's capability.
	if err := m.Revoke(b, shared); !errors.Is(err, ErrDenied) {
		t.Fatalf("unrelated revoke: %v", err)
	}
	// The owner itself may drop it.
	if err := m.Revoke(a, shared); err != nil {
		t.Fatal(err)
	}
	// The delegator may revoke what it handed out.
	shared2, err := m.Share(InitialDomain, node, a, memRes(64, 2), cap.MemRW, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, shared2); err != nil {
		t.Fatal(err)
	}
	if m.CheckAccess(a, phys.Addr(64*pg), cap.RightRead) {
		t.Fatal("revoked access persists")
	}
}

func TestSetEntryValidation(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	enclave, _ := m.CreateDomain(InitialDomain, "e")
	// No memory yet: entry rejected.
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); !errors.Is(err, ErrDenied) {
		t.Fatalf("entry without exec access: %v", err)
	}
	node := dom0MemNode(t, m)
	// Read-only share: still no exec.
	if _, err := m.Share(InitialDomain, node, enclave, memRes(64, 1), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); !errors.Is(err, ErrDenied) {
		t.Fatalf("entry on rw-only memory: %v", err)
	}
	// Seal requires an entry point.
	if _, err := m.Seal(InitialDomain, enclave); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("seal without entry: %v", err)
	}
	// A stranger cannot configure the domain.
	stranger, _ := m.CreateDomain(InitialDomain, "s")
	if err := m.SetEntry(stranger, enclave, phys.Addr(64*pg)); !errors.Is(err, ErrDenied) {
		t.Fatalf("stranger SetEntry: %v", err)
	}
}

func TestAttestationReportAndChain(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	enclave, _ := m.CreateDomain(InitialDomain, "enclave")
	node := dom0MemNode(t, m)
	prog := hw.NewAsm()
	prog.Hlt()
	code := prog.MustAssemble(phys.Addr(64 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(64*pg), code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 2), cap.MemRWX, cap.CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMeasuredRegion(InitialDomain, enclave, phys.MakeRegion(phys.Addr(64*pg), pg)); err != nil {
		t.Fatal(err)
	}
	meas, err := m.Seal(InitialDomain, enclave)
	if err != nil {
		t.Fatal(err)
	}

	nonce := []byte("verifier-nonce")
	rep, err := m.Attest(enclave, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Measurement != meas || !rep.Sealed {
		t.Fatalf("report = %+v", rep)
	}
	// The granted memory shows refcount 1 (exclusive).
	foundMem := false
	for _, rec := range rep.Resources {
		if rec.Resource.Kind == cap.ResMemory {
			foundMem = true
			if rec.RefCount != 1 {
				t.Fatalf("enclave memory refcount = %d", rec.RefCount)
			}
		}
	}
	if !foundMem {
		t.Fatal("no memory resource in report")
	}

	// Tampering breaks the signature.
	bad := *rep
	bad.Resources = append([]ResourceRecord(nil), rep.Resources...)
	bad.Resources[0].RefCount = 9
	if err := VerifyReport(&bad); !errors.Is(err, ErrBadReport) {
		t.Fatalf("tampered report: %v", err)
	}
	if err := VerifyReport(nil); err == nil {
		t.Fatal("nil report verified")
	}

	// The offline measurement matches ComputeMeasurement over the same
	// content (what tyche-hash does).
	content, err := m.CopyFrom(enclave, phys.Addr(64*pg), pg)
	if err != nil {
		t.Fatal(err)
	}
	offline := ComputeMeasurement(phys.Addr(64*pg), []MeasuredRegion{
		{Region: phys.MakeRegion(phys.Addr(64*pg), pg), Content: content},
	})
	if offline != meas {
		t.Fatal("offline measurement mismatch")
	}

	// Tier one: the boot quote binds the monitor key to the TPM.
	q, err := m.BootQuote([]byte("boot-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.UserData, m.AttestationKey()) {
		t.Fatal("quote does not carry the attestation key")
	}
	pcr, ok := tpm.QuotedPCR(q, tpm.PCRMonitor)
	if !ok {
		t.Fatal("monitor PCR missing from quote")
	}
	if pcr != ExpectedMonitorPCR(m.Identity()) {
		t.Fatal("monitor PCR does not match expected identity")
	}
}

func TestCallRequiresCoreCapability(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	enclave, _ := m.CreateDomain(InitialDomain, "e")
	node := dom0MemNode(t, m)
	prog := hw.NewAsm()
	prog.Hlt()
	code := prog.MustAssemble(phys.Addr(64 * pg))
	if err := m.CopyInto(InitialDomain, phys.Addr(64*pg), code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 1), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, enclave, phys.Addr(64*pg)); err != nil {
		t.Fatal(err)
	}
	// No core capability shared: Launch and Call must be denied.
	if err := m.Launch(enclave, 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("launch without core: %v", err)
	}
	idle := hw.NewAsm()
	idle.Hlt()
	if err := m.CopyInto(InitialDomain, phys.Addr(4*pg), idle.MustAssemble(phys.Addr(4*pg))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, phys.Addr(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Call(0, enclave); !errors.Is(err, ErrDenied) {
		t.Fatalf("call without core capability: %v", err)
	}
	// Return with empty stack.
	if err := m.Return(0); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("return on empty stack: %v", err)
	}
}

func TestDeviceDelegationConfinesDMA(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	gpuDom, _ := m.CreateDomain(InitialDomain, "gpu-domain")
	var devNode cap.NodeID
	node := dom0MemNode(t, m)
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResDevice {
			devNode = n.ID
		}
	}
	// I/O domain: pages 128..131 plus the device with DMA rights.
	if _, err := m.Grant(InitialDomain, node, gpuDom, memRes(128, 4), cap.MemRW, cap.CleanZero); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, devNode, gpuDom, cap.DeviceResource(0), cap.RightUse|cap.RightDMA, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	gpu := m.Machine().Device(0)
	// DMA inside the I/O domain's memory: allowed.
	if err := gpu.DMAWrite(phys.Addr(128*pg), []byte{1, 2, 3}); err != nil {
		t.Fatalf("confined DMA failed: %v", err)
	}
	// DMA anywhere else (e.g. dom0 kernel memory): denied.
	if err := gpu.DMAWrite(phys.Addr(4*pg), []byte{1}); err == nil {
		t.Fatal("DMA attack out of the I/O domain succeeded")
	}
}
