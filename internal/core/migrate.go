package core

// Attested live migration, monitor side. A domain's complete isolation
// state — exclusive memory contents, capability shape (regions +
// rights, cores), entry configuration, measured regions, seal-time
// measurement, and any queued vCPU contexts from the multi-tenant
// scheduler — is captured into a DomainSnapshot on the source machine
// and rebuilt by RestoreDomain on the destination, which re-derives
// the measurement through the ordinary Seal path and refuses the
// restore if it does not reproduce the snapshot's digest
// (re-attestation on arrival: the measurement is recomputed from the
// restored bytes, never trusted from the wire). The fleet control
// plane (internal/fleet) ships snapshots over dist.Conn attested
// channels and completes the departure with DepartKill — a forced
// scrub + key erase of the source copy, so exactly one plaintext
// instance of the domain exists after the handoff.
//
// Measurements and jump targets are absolute-address-dependent
// (ComputeMeasurement hashes region start/end; the ISA assembler
// resolves labels to absolute addresses), so a snapshot restores at
// the SAME physical base it was captured at. The fleet keeps that
// invariant cheap: every node boots an identical memory layout and
// tenant bases are assigned fleet-globally, so a domain's span is
// free on every other node by construction.

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Migration errors.
var (
	// ErrNotMigratable reports a domain whose state cannot be captured
	// completely: shared memory, device capabilities, a registered
	// submission ring, in-flight mediated calls, or currently running
	// on a core.
	ErrNotMigratable = errors.New("core: domain not migratable")
	// ErrReattest reports that a restored domain's recomputed seal
	// measurement does not reproduce the snapshot's digest — the
	// payload was corrupted or tampered with in flight. The partial
	// restore is destroyed before the error returns.
	ErrReattest = errors.New("core: migrated domain failed re-attestation")
)

// RegionSnapshot is one exclusively-held memory grant: offset from the
// snapshot base, the granted rights, and the full contents.
type RegionSnapshot struct {
	Offset uint64
	Size   uint64
	Rights cap.Rights
	Data   []byte
}

// VCPUSnapshot is one queued vCPU context from the multi-tenant
// scheduler. Started vCPUs carry saved architectural state and resume
// via TransDispatch on the destination; unstarted ones re-enter at the
// entry point like any fresh Schedule.
type VCPUSnapshot struct {
	Started bool
	Regs    [hw.NumRegs]uint64
	PC      uint64 // absolute
	Ring    hw.Ring
}

// MeasuredSpan is one measured region, base-relative.
type MeasuredSpan struct {
	Offset uint64
	Size   uint64
}

// DomainSnapshot is a domain's complete migratable state. It is
// JSON-serializable: the fleet ships it over an attested channel. Base
// and Entry are absolute physical addresses — restore happens at the
// same base (see the package comment on migrate.go).
type DomainSnapshot struct {
	Name      string
	Base      uint64
	Span      uint64 // bytes from Base covering every region
	Entry     uint64 // absolute
	EntrySet  bool
	EntryRing hw.Ring
	Sealed    bool
	// Measurement is the seal-time digest the destination must
	// reproduce from the restored bytes (zero when not sealed).
	Measurement tpm.Digest
	Measured    []MeasuredSpan
	Regions     []RegionSnapshot
	// Cores is how many core capabilities the domain held; the
	// destination shares the same count from its own core set.
	Cores int
	VCPUs []VCPUSnapshot
}

// SnapshotDomain captures a quiescent domain's migratable state with
// monitor authority (the node-operator entry point, like ForceKill:
// the control plane invokes it from outside any domain). The domain
// must be fully quiescent — not current on any core, no saved call
// frames referencing it, no registered submission ring — and its
// memory must be exclusively held: migrating one side of a shared
// region would fork the sharing relationship. The epoch pin keeps the
// capture atomic against revocation: a concurrent kill's scrub waits
// out the pin, so a snapshot never reads half-scrubbed memory.
func (m *Monitor) SnapshotDomain(id DomainID) (*DomainSnapshot, error) {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return nil, err
	}
	if id == InitialDomain {
		return nil, fmt.Errorf("%w: the initial domain", ErrNotMigratable)
	}
	// Quiescence: the domain is not on any core, and no core's mediated
	// call stack would unwind into it.
	for c, sc := range m.sched {
		sc.mu.Lock()
		onCore := sc.hasCur && sc.cur == id
		for _, f := range sc.frames {
			if f == id {
				onCore = true
			}
		}
		sc.mu.Unlock()
		if onCore {
			return nil, fmt.Errorf("%w: domain %d is active on core %v", ErrNotMigratable, id, c)
		}
	}
	m.ringMu.Lock()
	_, hasRing := m.rings[id]
	m.ringMu.Unlock()
	if hasRing {
		return nil, fmt.Errorf("%w: domain %d has a registered submission ring", ErrNotMigratable, id)
	}
	owner := cap.OwnerID(id)
	if devs := m.space.OwnerDevices(owner); len(devs) > 0 {
		return nil, fmt.Errorf("%w: domain %d holds device capabilities", ErrNotMigratable, id)
	}

	snap := &DomainSnapshot{Name: d.name}
	// Memory: every grant must be exclusive (refcount 1, sole owner) —
	// the same sweep the forced scrub uses to find reclaimable regions.
	rcs := m.space.RefCounts()
	grants := m.space.OwnerMemoryGrants(owner)
	if len(grants) == 0 {
		return nil, fmt.Errorf("%w: domain %d holds no memory", ErrNotMigratable, id)
	}
	base := grants[0].Region.Start
	end := grants[0].Region.End
	for _, g := range grants {
		for _, rc := range rcs {
			if rc.Region.Overlaps(g.Region) && (rc.Count != 1 || len(rc.Owners) != 1 || rc.Owners[0] != owner) {
				return nil, fmt.Errorf("%w: region %v of domain %d is shared", ErrNotMigratable, g.Region, id)
			}
		}
		if g.Region.Start < base {
			base = g.Region.Start
		}
		if g.Region.End > end {
			end = g.Region.End
		}
	}
	snap.Base = uint64(base)
	snap.Span = uint64(end - base)
	for _, g := range grants {
		view, err := m.mach.Mem.View(g.Region)
		if err != nil {
			return nil, err
		}
		snap.Regions = append(snap.Regions, RegionSnapshot{
			Offset: uint64(g.Region.Start - base),
			Size:   g.Region.Size(),
			Rights: g.Rights,
			Data:   append([]byte(nil), view...),
		})
	}
	snap.Cores = len(m.space.OwnerCores(owner))

	d.mu.Lock()
	snap.Entry = uint64(d.entry)
	snap.EntrySet = d.entrySet
	snap.EntryRing = d.entryRing
	snap.Sealed = d.State() == StateSealed
	snap.Measurement = d.measurement
	for _, r := range phys.NormalizeRegions(d.measured) {
		snap.Measured = append(snap.Measured, MeasuredSpan{
			Offset: uint64(r.Start - base),
			Size:   r.Size(),
		})
	}
	d.mu.Unlock()

	// Queued vCPU contexts: capture is only sound while no dispatch is
	// in flight (the fleet freezes serving before snapshotting). vCPUs
	// carrying mediated-call frames cannot migrate — the saved stack
	// references domains that stay behind.
	if q := m.Scheduler(); q != nil {
		for _, v := range q.DomainVCPUs(uint64(id)) {
			if len(v.Frames) > 0 || v.Running != v.Domain {
				return nil, fmt.Errorf("%w: queued vCPU of domain %d holds a mediated call stack", ErrNotMigratable, id)
			}
			snap.VCPUs = append(snap.VCPUs, VCPUSnapshot{
				Started: v.Started,
				Regs:    v.Regs,
				PC:      uint64(v.PC),
				Ring:    v.Ring,
			})
		}
	}
	m.schedMu.Lock()
	for _, st := range m.schedSet {
		if st.id == id {
			snap.VCPUs = append(snap.VCPUs, VCPUSnapshot{Started: st.resumed, Regs: st.regs, PC: uint64(st.pc), Ring: st.ring})
		}
	}
	m.schedMu.Unlock()

	m.stats.migrationsOut.Add(1)
	return snap, nil
}

// RestoreDomain rebuilds a snapshot as a new domain on this monitor,
// at the snapshot's original base. caller is the admitting domain
// (the node's dom0); node is a memory capability of caller covering
// [Base, Base+Span) from which the regions are granted; cores lists
// the physical cores to share with the restored domain (each must
// have a core capability owned by caller).
//
// Re-attestation on arrival: for a sealed snapshot the restore runs
// the ordinary Seal path, which recomputes the measurement from the
// restored bytes — if it does not reproduce Snapshot.Measurement the
// restored domain is destroyed (forced scrub) and ErrReattest
// returns. Any other mid-restore failure likewise destroys the
// partial domain: a failed restore leaves no half-state behind.
func (m *Monitor) RestoreDomain(caller DomainID, node cap.NodeID, cores []phys.CoreID, snap *DomainSnapshot) (id DomainID, retErr error) {
	if snap == nil || len(snap.Regions) == 0 {
		return 0, fmt.Errorf("%w: empty snapshot", ErrNotMigratable)
	}
	id, retErr = m.CreateDomain(caller, snap.Name)
	if retErr != nil {
		return 0, retErr
	}
	defer func() {
		if retErr != nil {
			// Destroy the partial restore with a forced scrub — no
			// half-state survives a failed migration.
			_ = m.ForceKill(id)
			id = 0
		}
	}()
	base := phys.Addr(snap.Base)
	for _, r := range snap.Regions {
		if uint64(len(r.Data)) != r.Size {
			return id, fmt.Errorf("%w: region size mismatch", ErrReattest)
		}
		reg := phys.MakeRegion(base+phys.Addr(r.Offset), r.Size)
		// Contents land before the grant: once granted exclusively the
		// admitting domain loses access.
		if err := m.CopyInto(caller, reg.Start, r.Data); err != nil {
			return id, err
		}
		if _, err := m.Grant(caller, node, id, cap.MemResource(reg), r.Rights, cap.CleanZero); err != nil {
			return id, err
		}
	}
	for _, c := range cores {
		cn, ok := m.callerCoreNode(caller, c)
		if !ok {
			return id, fmt.Errorf("%w: caller %d holds no capability for core %v", ErrNotMigratable, caller, c)
		}
		if _, err := m.Share(caller, cn, id, cap.CoreResource(c), cap.RightRun|cap.RightShare, cap.CleanNone); err != nil {
			return id, err
		}
	}
	if snap.EntrySet {
		if err := m.SetEntry(caller, id, phys.Addr(snap.Entry)); err != nil {
			return id, err
		}
		if err := m.SetEntryRing(caller, id, snap.EntryRing); err != nil {
			return id, err
		}
	}
	for _, ms := range snap.Measured {
		r := phys.MakeRegion(base+phys.Addr(ms.Offset), ms.Size)
		if err := m.AddMeasuredRegion(caller, id, r); err != nil {
			return id, err
		}
	}
	if snap.Sealed {
		got, err := m.Seal(caller, id)
		if err != nil {
			return id, err
		}
		if got != snap.Measurement {
			return id, fmt.Errorf("%w: measurement %x != snapshot %x", ErrReattest, got[:4], snap.Measurement[:4])
		}
	}
	for _, vs := range snap.VCPUs {
		var err error
		if vs.Started {
			err = m.ScheduleResumed(id, vs.Regs, phys.Addr(vs.PC), vs.Ring)
		} else {
			err = m.Schedule(id)
		}
		if err != nil {
			return id, err
		}
	}
	m.stats.migrationsIn.Add(1)
	return id, nil
}

// callerCoreNode finds caller's capability node for a physical core.
func (m *Monitor) callerCoreNode(caller DomainID, c phys.CoreID) (cap.NodeID, bool) {
	for _, n := range m.space.OwnerNodes(cap.OwnerID(caller)) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == c {
			return n.ID, true
		}
	}
	return 0, false
}
