package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// drainWorld builds a fleet of ring-owning tenants with identical
// pending work: each tenant's ring holds a CallSelfID, two CallRevoke
// descriptors over its own flush-on-revoke shares, and a
// CallEnumerateLen. Deterministic — two worlds built with the same
// arguments submit byte-identical descriptor streams.
func drainWorld(t testing.TB, m *Monitor, tenants int) (doms []DomainID, bases []phys.Addr) {
	t.Helper()
	node := dom0MemNode(t, m)
	const entries = 16
	for i := 0; i < tenants; i++ {
		dom, err := m.CreateDomain(InitialDomain, "tenant")
		if err != nil {
			t.Fatal(err)
		}
		ringPage := uint64(600 + i)
		if _, err := m.Grant(InitialDomain, node, dom, memRes(ringPage, 1), cap.MemRW, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		base := phys.Addr(ringPage * pg)
		if err := m.RingSetup(dom, base, entries); err != nil {
			t.Fatal(err)
		}
		rawEnqueue(t, m, base, entries, CallSelfID)
		for j := uint64(0); j < 2; j++ {
			id, err := m.Share(InitialDomain, node, dom, memRes(700+uint64(i)*4+j, 1), cap.MemRW, cap.CleanFlushTLB)
			if err != nil {
				t.Fatal(err)
			}
			rawEnqueue(t, m, base, entries, CallRevoke, uint64(id))
		}
		rawEnqueue(t, m, base, entries, CallEnumerateLen)
		doms = append(doms, dom)
		bases = append(bases, base)
	}
	return doms, bases
}

// rawEnqueue is ring_test.go's enqueue for testing.TB (benchmarks use
// it too).
func rawEnqueue(t testing.TB, m *Monitor, base phys.Addr, entries uint64, desc ...uint64) {
	t.Helper()
	mem := m.Machine().Mem
	tail, err := mem.Read64(base + RingOffSQTail)
	if err != nil {
		t.Fatal(err)
	}
	off := base + phys.Addr(RingSQOff(entries, tail))
	for w := 0; w < 6; w++ {
		var v uint64
		if w < len(desc) {
			v = desc[w]
		}
		if err := mem.Write64(off+phys.Addr(8*w), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Write64(base+RingOffSQTail, tail+1); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDrainMatchesSerial drives the identical drain workload
// through (a) the untouched serial path, (b) workers=1 — which must
// route to the exact same serial code, cycle-for-cycle — and (c) a
// 4-worker parallel round, which must agree on every completion,
// every capability-space outcome, and all semantic counters, with a
// clean trace. Two 4-worker runs must also agree with each other on
// cycle totals (the partitioned round is deterministic).
func TestParallelDrainMatchesSerial(t *testing.T) {
	const tenants = 4
	type outcome struct {
		cycles  uint64
		ops     uint64
		revs    uint64
		shoots  uint64
		rounds  uint64
		comps   []uint64
		nodes   []int
		pending []uint64
	}
	run := func(workers int) outcome {
		m := bootWorld(t, BackendVTX)
		if workers > 0 {
			m.SetReclaimWorkers(workers)
		}
		doms, bases := drainWorld(t, m, tenants)
		if n := m.DrainRings(); n != tenants*4 {
			t.Fatalf("workers=%d executed %d descriptors, want %d", workers, n, tenants*4)
		}
		var o outcome
		o.cycles = m.Machine().Clock.Cycles()
		st := m.Stats()
		o.ops, o.revs, o.shoots = st.RingOps, st.Revocations, st.RingShootdowns
		o.rounds = st.RingParallelDrains
		for i, base := range bases {
			for slot := uint64(0); slot < 4; slot++ {
				status, result := completion(t, m, base, 16, slot)
				o.comps = append(o.comps, status, result)
			}
			o.nodes = append(o.nodes, len(m.OwnerNodes(doms[i])))
			o.pending = append(o.pending, m.RingPending(doms[i]))
		}
		return o
	}

	serial := run(0)
	one := run(1)
	par := run(4)
	par2 := run(4)

	// workers=1 routes to the serial code: bit-identical cycle history.
	if serial.cycles != one.cycles {
		t.Fatalf("workers=1 cycles %d != serial %d", one.cycles, serial.cycles)
	}
	if fmt.Sprint(serial) != fmt.Sprint(one) {
		t.Fatalf("workers=1 outcome diverged from serial:\n  serial: %+v\n  w=1:    %+v", serial, one)
	}
	// The parallel round must agree on all semantics. Cycle totals
	// legitimately differ (cross-ring coalescing retires fewer
	// shootdown rounds), as does the round counter.
	if par.rounds != 1 || serial.rounds != 0 {
		t.Fatalf("RingParallelDrains: serial %d (want 0), parallel %d (want 1)", serial.rounds, par.rounds)
	}
	if par.ops != serial.ops || par.revs != serial.revs {
		t.Fatalf("semantic counters diverged: serial ops=%d revs=%d, parallel ops=%d revs=%d",
			serial.ops, serial.revs, par.ops, par.revs)
	}
	if par.shoots >= serial.shoots {
		t.Fatalf("parallel round ran %d shootdown rounds, serial %d — coalescing gained nothing", par.shoots, serial.shoots)
	}
	if fmt.Sprint(par.comps) != fmt.Sprint(serial.comps) {
		t.Fatalf("completions diverged:\n  serial:   %v\n  parallel: %v", serial.comps, par.comps)
	}
	if fmt.Sprint(par.nodes) != fmt.Sprint(serial.nodes) || fmt.Sprint(par.pending) != fmt.Sprint(serial.pending) {
		t.Fatalf("capability/ring state diverged: serial %v/%v, parallel %v/%v",
			serial.nodes, serial.pending, par.nodes, par.pending)
	}
	// The partitioned round itself is deterministic.
	if par.cycles != par2.cycles || fmt.Sprint(par) != fmt.Sprint(par2) {
		t.Fatalf("two 4-worker runs diverged: cycles %d vs %d", par.cycles, par2.cycles)
	}
}

// TestDrainErrorSurfaced: a malformed ring (guest overran its own
// tail) used to fail its barrier drain silently. The failure must now
// be counted in Stats().RingDrainErrors and latched for
// FirstDrainError, without poisoning other tenants' rings.
func TestDrainErrorSurfaced(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	doms, bases := drainWorld(t, m, 2)
	// Overrun tenant 0's ring: tail jumps past head by more than the
	// capacity, which the drain must refuse.
	if err := m.Machine().Mem.Write64(bases[0]+RingOffSQTail, 1000); err != nil {
		t.Fatal(err)
	}
	n := m.DrainRings()
	if n != 4 {
		t.Fatalf("healthy tenant drained %d descriptors, want 4", n)
	}
	if got := m.Stats().RingDrainErrors; got != 1 {
		t.Fatalf("RingDrainErrors = %d, want 1", got)
	}
	err := m.FirstDrainError()
	if err == nil || !strings.Contains(err.Error(), "overruns") {
		t.Fatalf("FirstDrainError = %v, want the overrun denial", err)
	}
	// The healthy tenant's ring still works.
	if m.RingPending(doms[1]) != 0 {
		t.Fatal("healthy tenant's ring was not drained")
	}
}

// TestRevokeStormWhileDraining races 4-worker parallel drains against
// public-API revocations, a ForceKillAll storm over ring-owning
// tenants, guest-side descriptor enqueues, and pinned readers — the
// revocation-storm-while-draining scenario, run under -race on both
// lock builds. Trace-oracle gated: when tracing is compiled in, both
// checkers must find the interleaved trace clean.
func TestRevokeStormWhileDraining(t *testing.T) {
	m, ck, sh := bootDualTracedWorld(t, BackendVTX)
	m.SetReclaimWorkers(4)
	const tenants = 6
	doms, bases := drainWorld(t, m, tenants)
	node := dom0MemNode(t, m)
	// Extra dom0-side shares the storm revokes through the public API
	// while drains run.
	var shares []cap.NodeID
	for i := 0; i < 16; i++ {
		id, err := m.Share(InitialDomain, node, doms[i%tenants], memRes(800+uint64(i), 1), cap.MemRW, cap.CleanFlushTLB)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, id)
	}

	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // drainer
		defer wg.Done()
		for i := 0; i < 30; i++ {
			m.DrainRings()
		}
	}()
	go func() { // revoker (public destructive API)
		defer wg.Done()
		for _, id := range shares {
			_ = m.Revoke(InitialDomain, id)
		}
	}()
	go func() { // killer: a storm over ring-owning tenants
		defer wg.Done()
		if _, err := m.ForceKillAll(doms[tenants-2], doms[tenants-1]); err != nil {
			t.Errorf("ForceKillAll: %v", err)
		}
	}()
	go func() { // pinned readers + guest enqueues on surviving rings
		defer wg.Done()
		for i := 0; i < 40; i++ {
			d := doms[i%(tenants-2)]
			m.RingPending(d)
			m.OwnerNodes(d)
			rawEnqueue(t, m, bases[i%(tenants-2)], 16, CallSelfID)
		}
	}()
	wg.Wait()
	if n, err := m.ForceKillAll(doms[0]); n != 1 || err != nil {
		t.Fatalf("post-storm kill: n=%d err=%v", n, err)
	}
	m.DrainRings()

	es := m.EpochStats()
	if es.CombinedSyncs < 1 {
		t.Fatalf("kill storm combined no grace periods: %+v", es)
	}
	if trace.Compiled {
		if err := assertCheckersAgree(t, ck, sh); err != nil {
			t.Fatalf("storm trace flagged: %v", err)
		}
	}
}

// TestDrainHotPathAllocs pins the per-ring drain hot path (doorbell
// flush of one pending descriptor, no tracer) at zero heap
// allocations per operation — the batched-ABI latency budget the
// benchmarks gate in CI.
func TestDrainHotPathAllocs(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	const entries = 1
	base := phys.Addr(600 * pg)
	if err := m.RingSetup(InitialDomain, base, entries); err != nil {
		t.Fatal(err)
	}
	mem := m.Machine().Mem
	// The descriptor slot is reused every iteration; only the tail
	// moves.
	if err := mem.Write64(base+phys.Addr(RingSQOff(entries, 0)), CallSelfID); err != nil {
		t.Fatal(err)
	}
	tail := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		tail++
		if err := mem.Write64(base+RingOffSQTail, tail); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RingFlush(InitialDomain); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("drain hot path allocates %.1f times per flush, want 0", allocs)
	}
}

// BenchmarkDrainRingsParallel measures a full barrier drain over an
// 8-tenant fleet at 1 and 4 reclamation workers, and the single-ring
// doorbell hot path (perring, which must report 0 allocs/op).
func BenchmarkDrainRingsParallel(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("rings8/w%d", w), func(b *testing.B) {
			m := bootWorld(b, BackendVTX)
			m.SetReclaimWorkers(w)
			node := dom0MemNode(b, m)
			const tenants, entries = 8, 64
			bases := make([]phys.Addr, tenants)
			for i := 0; i < tenants; i++ {
				dom, err := m.CreateDomain(InitialDomain, "tenant")
				if err != nil {
					b.Fatal(err)
				}
				// 64 entries → RingBytes just over a page: grant two.
				page := uint64(600 + i*2)
				if _, err := m.Grant(InitialDomain, node, dom, memRes(page, 2), cap.MemRW, cap.CleanNone); err != nil {
					b.Fatal(err)
				}
				bases[i] = phys.Addr(page * pg)
				if err := m.RingSetup(dom, bases[i], entries); err != nil {
					b.Fatal(err)
				}
				// Descriptor slots hold CallSelfID once; iterations only
				// republish tails.
				for s := uint64(0); s < entries; s++ {
					if err := m.Machine().Mem.Write64(bases[i]+phys.Addr(RingSQOff(entries, s)), CallSelfID); err != nil {
						b.Fatal(err)
					}
				}
			}
			mem := m.Machine().Mem
			tail := uint64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tail += 16
				for _, base := range bases {
					if err := mem.Write64(base+RingOffSQTail, tail); err != nil {
						b.Fatal(err)
					}
				}
				if n := m.DrainRings(); n != tenants*16 {
					b.Fatalf("drained %d, want %d", n, tenants*16)
				}
			}
		})
	}
	b.Run("perring", func(b *testing.B) {
		m := bootWorld(b, BackendVTX)
		const entries = 1
		base := phys.Addr(600 * pg)
		if err := m.RingSetup(InitialDomain, base, entries); err != nil {
			b.Fatal(err)
		}
		mem := m.Machine().Mem
		if err := mem.Write64(base+phys.Addr(RingSQOff(entries, 0)), CallSelfID); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mem.Write64(base+RingOffSQTail, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
			if _, err := m.RingFlush(InitialDomain); err != nil {
				b.Fatal(err)
			}
		}
	})
}
