package core

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// TestGuestVMFUNC exercises the Hodor pattern end to end: a trampoline
// page mapped in both dom0's and a compartment's views lets guest code
// switch views with the VMFUNC instruction — no monitor exit — and read
// compartment-private data that dom0 itself cannot touch.
func TestGuestVMFUNC(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	comp, err := m.CreateDomain(InitialDomain, "fastcomp")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}

	// Compartment-private data page with a secret value.
	private := phys.MakeRegion(96*pg, pg)
	if err := m.Machine().Mem.Write64(private.Start, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, comp, cap.MemResource(private), cap.MemRW, cap.CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Share(InitialDomain, coreNode, comp, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}

	// Trampoline at page 90, mapped RX in BOTH views.
	tramp := phys.Addr(90 * pg)
	a := hw.NewAsm()
	a.Movi(14, uint32(comp)) // select the compartment view
	a.Vmfunc()               // switch (no exit)
	a.Movi(1, uint32(private.Start))
	a.Ld(2, 1, 0) // read the secret inside the compartment
	a.Movi(14, uint32(InitialDomain))
	a.Vmfunc() // switch back
	a.Hlt()
	code := a.MustAssemble(tramp)
	if err := m.CopyInto(InitialDomain, tramp, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Share(InitialDomain, node, comp, cap.MemResource(phys.MakeRegion(tramp, pg)), cap.MemRX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	// The compartment needs an entry point to be a valid fast-path
	// endpoint.
	if err := m.SetEntry(InitialDomain, comp, tramp); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterFastPath(InitialDomain, InitialDomain, comp, 0); err != nil {
		t.Fatal(err)
	}

	// Negative control first: dom0 reading the private page directly
	// faults (it granted the page away).
	direct := hw.NewAsm()
	direct.Movi(1, uint32(private.Start)).Ld(2, 1, 0).Hlt()
	if err := m.CopyInto(InitialDomain, 4*pg, direct.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapFault {
		t.Fatalf("direct read: %v, want fault", res.Trap)
	}

	// Through the trampoline: the same read succeeds inside the
	// compartment's view, with zero monitor exits.
	cpu := m.Machine().Core(0)
	exitsBefore := m.Stats().VMExits
	cpu.PC = tramp
	cpu.ClearHalt()
	res, err = m.RunCore(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("trampoline run: %v", res.Trap)
	}
	if cpu.Regs[2] != 0xfeed {
		t.Fatalf("r2 = %#x, want 0xfeed", cpu.Regs[2])
	}
	if m.Stats().VMExits != exitsBefore {
		t.Fatalf("fast path took %d monitor exits", m.Stats().VMExits-exitsBefore)
	}
	// Control returned to dom0's view: the monitor sees dom0 current.
	if cur, _ := m.Current(0); cur != InitialDomain {
		t.Fatalf("current = %d", cur)
	}
	if res.Domain != InitialDomain {
		t.Fatalf("attributed domain = %d", res.Domain)
	}
}

// TestGuestVMFUNCUnregisteredFaults: an index the monitor never
// installed vm-exits (modelled as a fault) — guests cannot invent
// views.
func TestGuestVMFUNCUnregisteredFaults(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a := hw.NewAsm()
	a.Movi(14, 777)
	a.Vmfunc()
	a.Hlt()
	if err := m.CopyInto(InitialDomain, 4*pg, a.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapFault {
		t.Fatalf("trap = %v, want fault on unregistered index", res.Trap)
	}
}
