// Package core implements the isolation monitor — the paper's primary
// contribution (§3): a minimal security layer that is the sole executive
// power over isolation. It exposes a narrow API with which any software,
// regardless of privilege, defines isolation policies (legislative), and
// it emits signed attestations anchored in a TPM so third parties can
// verify system-wide invariants (judiciary).
//
// The monitor deliberately does not manage resources: it validates
// sharing, granting, and revocation of physical names (memory regions,
// cores, devices) proposed by domains, translates them to hardware state
// through a backend, and mediates every inter-domain control transfer
// (§3.5: "the monitor does not choose resources to allocate to a domain,
// but rather validates allocation").
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// DomainID identifies a trust domain. It doubles as the capability
// owner ID: the monitor is the only writer of the capability space, and
// domains are the only owners.
type DomainID = cap.OwnerID

// MonitorDomain is the monitor's own identity: owner of the reserved
// monitor memory, never schedulable.
const MonitorDomain DomainID = 0

// InitialDomain is the first domain, created at boot with every
// non-reserved resource — the role Linux plays on real Tyche ("Tyche
// boots on bare metal and runs an unmodified Ubuntu distribution and
// Linux kernel as an initial domain", §4).
const InitialDomain DomainID = 1

// DomainState is a trust domain's lifecycle state.
type DomainState int

// Domain states.
const (
	// StateActive domains can receive resources and be reconfigured.
	StateActive DomainState = iota
	// StateSealed domains have a frozen resource set and a fixed
	// measurement; they are runnable and attestable.
	StateSealed
	// StateDead domains have been killed; all their capabilities are
	// revoked and their ID is never reused.
	StateDead
)

var domainStateNames = [...]string{"active", "sealed", "dead"}

func (s DomainState) String() string {
	if int(s) < len(domainStateNames) {
		return domainStateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// SyscallHandler is the Go-level stand-in for a domain's ring-0 trap
// handler: when interpreted code inside the domain executes SYSCALL,
// the monitor-run execution loop dispatches here. The handler may
// inspect and modify the trapping core's registers.
type SyscallHandler func(c *hw.Core) error

// Domain is the monitor's record of one trust domain (§3.1: "a trust
// domain is an identity associated with a set of access rights to
// physical resources").
//
// Concurrency: id, name, and creator are immutable after creation. The
// lifecycle state is atomic so the lock-free read path (liveness checks,
// Domains(), VMCall dispatch) observes it without a lock. Everything
// else — entry point, measured regions, handlers, report data, log —
// is guarded by mu, the per-domain mutex in the monitor's lock order
// (below the top-level monitor lock and coreSched.mu, above hwMu and
// the capability-space locks).
type Domain struct {
	id      DomainID
	name    string
	creator DomainID
	state   atomic.Int32 // DomainState; zero value is StateActive

	// cfgGen counts configuration changes the transition cache depends
	// on (entry point, entry ring, sealing) — mutations that do NOT
	// bump the capability-space generation. A cached switch is valid
	// only while both generations match what was seen at cache fill
	// (transcache.go).
	cfgGen atomic.Uint64

	// mu guards the mutable fields below. The monitor also holds it
	// while rebuilding this domain's hardware state (backend SyncDomain)
	// so rebuilds for one domain are serialised.
	mu sync.Mutex

	entry     phys.Addr
	entrySet  bool
	entryRing hw.Ring

	// measured lists the regions whose initial content is folded into
	// the measurement at seal time, per the libtyche manifest ("whether
	// ... their content is part of the attestation or not", §4.2).
	measured    []phys.Region
	measurement tpm.Digest

	syscall SyscallHandler
	irq     IRQHandler

	// reportData is a domain-chosen value included (signed) in its
	// attestation reports — the SGX REPORTDATA analogue. Domains bind
	// runtime material (e.g. a key-exchange public key) to their
	// attested identity with it.
	reportData tpm.Digest

	// logbuf collects values written via the guest LOG hypercall; tests
	// and examples read it as the domain's "console".
	logbuf []uint64
}

// ID returns the domain's identity.
func (d *Domain) ID() DomainID { return d.id }

// Name returns the human-readable name (not part of the TCB).
func (d *Domain) Name() string { return d.name }

// Creator returns the domain that created this one.
func (d *Domain) Creator() DomainID { return d.creator }

// State returns the lifecycle state (atomic, lock-free).
func (d *Domain) State() DomainState { return DomainState(d.state.Load()) }

// setState publishes a lifecycle transition. StateDead is absorbing:
// once a kill has published death, a configuration reader that
// validated liveness just before (e.g. an epoch-pinned seal) must not
// resurrect the domain by storing over it — the CAS loop makes the
// late writer lose.
func (d *Domain) setState(s DomainState) {
	for {
		old := d.state.Load()
		if DomainState(old) == StateDead {
			return
		}
		if d.state.CompareAndSwap(old, int32(s)) {
			return
		}
	}
}

// bumpCfgGen invalidates any cached pre-validated transitions into
// this domain (called under d.mu by every entry/ring/seal mutation).
func (d *Domain) bumpCfgGen() { d.cfgGen.Add(1) }

// Entry returns the fixed entry point (valid once set).
func (d *Domain) Entry() (phys.Addr, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.entry, d.entrySet
}

// EntryRing returns the privilege ring execution enters the domain in.
func (d *Domain) EntryRing() hw.Ring {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.entryRing
}

// Measurement returns the measurement computed at seal time; the zero
// digest before sealing.
func (d *Domain) Measurement() tpm.Digest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.measurement
}

// ReportData returns the domain-chosen report data.
func (d *Domain) ReportData() tpm.Digest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reportData
}

// Log returns the values the domain logged via the LOG hypercall.
func (d *Domain) Log() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, len(d.logbuf))
	copy(out, d.logbuf)
	return out
}

func (d *Domain) String() string {
	return fmt.Sprintf("domain%d(%s,%v)", d.id, d.name, d.State())
}
