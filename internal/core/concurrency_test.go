package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Concurrency stress tests for the SMP monitor: many threads (Go-level
// API) and many cores (guest VMCall ABI) hammering one capability space
// at once. Run them under -race; the CI race job does.

// TestConcurrentAPICapabilityOps has K goroutines share+revoke disjoint
// regions of dom0 memory through the Go-level API while a reader
// goroutine continuously enumerates, and asserts the bookkeeping the
// paper's verifiers depend on comes out exact: per-region refcounts
// back to 1, no lost or phantom revocations.
func TestConcurrentAPICapabilityOps(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	const workers = 8
	iters := 50
	if testing.Short() {
		iters = 10
	}
	statsBefore := m.Stats()

	type worker struct {
		dom    DomainID
		region phys.Region
	}
	var ws [workers]worker
	for i := range ws {
		dom, err := m.CreateDomain(InitialDomain, fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = worker{dom: dom, region: phys.MakeRegion(phys.Addr(uint64(128+i)*pg), pg)}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := range ws {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				id, err := m.Share(InitialDomain, node, w.dom, cap.MemResource(w.region), cap.MemRW, cap.CleanFlushTLB)
				if err != nil {
					errs <- err
					return
				}
				if err := m.Revoke(InitialDomain, id); err != nil {
					errs <- err
					return
				}
			}
		}(ws[i])
	}
	// A reader thread exercises the enumeration paths mid-flight.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.RefCounts()
				m.Enumerate(InitialDomain)
				m.Stats()
				m.CapGeneration()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := m.Stats()
	wantOps := uint64(workers * iters)
	if got := stats.Revocations - statsBefore.Revocations; got != wantOps {
		t.Fatalf("revocations = %d, want %d", got, wantOps)
	}
	if got := stats.CapOps - statsBefore.CapOps; got != 2*wantOps {
		t.Fatalf("capops = %d, want %d", got, 2*wantOps)
	}
	// Every hammered region must be exclusive to dom0 again.
	for _, rc := range m.RefCounts() {
		for _, w := range ws {
			if rc.Region.Overlaps(w.region) && rc.Count != 1 {
				t.Fatalf("region %v refcount = %d after revoke storm", rc.Region, rc.Count)
			}
		}
	}
	assertTraceClean(t, m, ck)
}

// TestConcurrentGuestVMCallStress is the guest-ABI version: four cores
// run domains concurrently (Monitor.RunCores), each looping CallShare
// of its private scratch page to the next domain in the ring followed
// by CallRevoke — monitor entries from four cores race on one space.
// Afterwards refcount and generation invariants must hold exactly.
func TestConcurrentGuestVMCallStress(t *testing.T) {
	const cores = 4
	iters := 32
	if testing.Short() {
		iters = 8
	}
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: cores, PMPEntries: 16,
		IOMMUAllowByDefault: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: BackendVTX})
	if err != nil {
		t.Fatal(err)
	}
	ck := attachChecker(t, m)
	node := dom0MemNode(t, m)
	coreNodes := map[phys.CoreID]cap.NodeID{}
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore {
			coreNodes[n.Resource.Core] = n.ID
		}
	}

	prog := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(12, 1)
		a.Label("loop")
		a.Mov(1, 6)  // scratch node
		a.Mov(2, 7)  // destination domain
		a.Mov(3, 8)  // scratch start
		a.Mov(4, 9)  // scratch size
		a.Mov(5, 11) // rights | cleanup<<16
		a.Movi(0, uint32(CallShare))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Movi(0, uint32(CallRevoke))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		a.Label("fail")
		a.Movi(15, 0xdead)
		a.Hlt()
		return a.MustAssemble(base)
	}

	type worker struct {
		dom     DomainID
		scratch phys.Region
		node    cap.NodeID
	}
	var ws [cores]worker
	for i := 0; i < cores; i++ {
		dom, err := m.CreateDomain(InitialDomain, fmt.Sprintf("stress%d", i))
		if err != nil {
			t.Fatal(err)
		}
		codeAt := phys.Addr(uint64(64+4*i) * pg)
		scratch := phys.MakeRegion(codeAt+pg, pg)
		if err := m.CopyInto(InitialDomain, codeAt, prog(codeAt)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Grant(InitialDomain, node, dom, cap.MemResource(phys.MakeRegion(codeAt, pg)), cap.MemRWX, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		sn, err := m.Grant(InitialDomain, node, dom, cap.MemResource(scratch),
			cap.MemRW|cap.RightShare|cap.RightGrant, cap.CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Share(InitialDomain, coreNodes[phys.CoreID(i)], dom, cap.CoreResource(phys.CoreID(i)), cap.RightRun, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		if err := m.SetEntry(InitialDomain, dom, codeAt); err != nil {
			t.Fatal(err)
		}
		ws[i] = worker{dom: dom, scratch: scratch, node: sn}
	}
	statsBefore := m.Stats()
	genBefore := m.CapGeneration()
	for i := 0; i < cores; i++ {
		if err := m.Launch(ws[i].dom, phys.CoreID(i)); err != nil {
			t.Fatal(err)
		}
		c := mach.Core(phys.CoreID(i))
		c.Regs[6] = uint64(ws[i].node)
		c.Regs[7] = uint64(ws[(i+1)%cores].dom)
		c.Regs[8] = uint64(ws[i].scratch.Start)
		c.Regs[9] = ws[i].scratch.Size()
		c.Regs[10] = uint64(iters)
		c.Regs[11] = uint64(cap.MemRW) | uint64(cap.CleanFlushTLB)<<16
	}
	runs, err := m.RunCores(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != cores {
		t.Fatalf("ran %d cores, want %d", len(runs), cores)
	}
	for i := 0; i < cores; i++ {
		run := runs[phys.CoreID(i)]
		c := mach.Core(phys.CoreID(i))
		if run.Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			t.Fatalf("core %d: trap=%v r0=%d r10=%d r15=%#x", i, run.Trap, c.Regs[0], c.Regs[10], c.Regs[15])
		}
	}
	stats := m.Stats()
	wantOps := uint64(cores * iters)
	if got := stats.Revocations - statsBefore.Revocations; got != wantOps {
		t.Fatalf("revocations = %d, want %d", got, wantOps)
	}
	if got := stats.VMExits - statsBefore.VMExits; got < 2*wantOps {
		t.Fatalf("vmexits = %d, want >= %d", got, 2*wantOps)
	}
	if gen := m.CapGeneration(); gen <= genBefore {
		t.Fatalf("capability generation did not advance: %d -> %d", genBefore, gen)
	}
	for _, rc := range m.RefCounts() {
		for _, w := range ws {
			if rc.Region.Overlaps(w.scratch) && rc.Count != 1 {
				t.Fatalf("scratch %v refcount = %d after stress", rc.Region, rc.Count)
			}
		}
	}
	assertTraceClean(t, m, ck)
}
