package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
)

// The monitor API fuzzer drives a sequence of monitor calls decoded
// from an opaque byte stream — frequently from unauthorized callers,
// against dead domains, with misaligned or overlapping regions — and
// checks the system-wide isolation invariants as it goes. This is the
// "malicious-domain API abuse" failure-injection from DESIGN.md: no
// sequence of legal-or-rejected API calls may produce a state where the
// hardware filter of one domain admits memory the capability space says
// it does not have. The byte-stream encoding makes it a native Go fuzz
// target (FuzzMonitorAPI) with a checked-in seed corpus under
// testdata/fuzz/, while TestMonitorAPIFuzz keeps the long seeded runs
// in the ordinary test suite.

// driveMonitorOps interprets data as a monitor-call program: each op is
// one opcode byte plus operand bytes, all drawn modulo the live object
// sets so every input decodes to something executable. Invariants are
// re-checked periodically and at the end. Ops 12-15 exercise the
// multi-tenant scheduler (exec shares, core delegation, CallYield
// tenants, scheduled run bursts); ops 16-18 the batched ABI (ring
// setup, raw descriptor enqueue, doorbell flush); ops 19-21 are the
// revoke-heavy mix for the epoch-reclamation scheme (revoke bursts,
// create+share+revoke churn, revocations interleaved with ring
// drains); op 22 bursts concurrent doorbell flushes from every
// ring-owning domain with the parallel reclamation pipeline opted in;
// op 23 runs the migration pipeline (snapshot → transfer → restore on
// a lazily-booted second monitor, sometimes followed by the departure
// kill). Widening the opcode space shifts how pre-existing corpus
// entries decode, which is fine — every decode is a valid program.
func driveMonitorOps(tb testing.TB, m *Monitor, data []byte) {
	domains := []DomainID{InitialDomain}
	var nodes []cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		nodes = append(nodes, n.ID)
	}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			pos++ // still consume, so the loop terminates
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	pick := func(n int) int {
		if n <= 0 {
			return 0
		}
		return int(next()) % n
	}
	randDomain := func() DomainID { return domains[pick(len(domains))] }
	randNode := func() cap.NodeID {
		if len(nodes) == 0 {
			return 0
		}
		return nodes[pick(len(nodes))]
	}
	randRegion := func() cap.Resource {
		start := uint64(next()) << 2 // 0..1020 pages, page-aligned
		pages := uint64(pick(16) + 1)
		return cap.MemResource(phys.MakeRegion(phys.Addr(start*pg), pages*pg))
	}
	// dom0CoreNode finds dom0's capability node for a physical core, if
	// it still owns one (fuzz streams can revoke anything, including
	// dom0's own roots).
	dom0CoreNode := func(c phys.CoreID) (cap.NodeID, bool) {
		for _, n := range m.OwnerNodes(InitialDomain) {
			if n.Resource.Kind == cap.ResCore && n.Resource.Core == c {
				return n.ID, true
			}
		}
		return 0, false
	}
	// Registered rings, by owner: op 17 needs a base to store descriptors
	// at, exactly as guest code would (raw physical stores — the monitor
	// must stay safe no matter what the ring memory holds by drain time).
	rings := map[DomainID]struct {
		base    phys.Addr
		entries uint64
	}{}
	schedOn := false
	// The migration peer (op 23): a second in-process monitor playing
	// the destination node, booted on first use.
	var peer *Monitor
	steps := 0
	for pos < len(data) {
		switch next() % 24 {
		case 0:
			if len(domains) < 32 {
				if id, err := m.CreateDomain(randDomain(), "fuzz"); err == nil {
					domains = append(domains, id)
				}
			}
		case 1, 2, 3:
			if id, err := m.Share(randDomain(), randNode(), randDomain(), randRegion(), cap.MemRW|cap.RightShare, cap.CleanZero); err == nil {
				nodes = append(nodes, id)
			}
		case 4, 5:
			if id, err := m.Grant(randDomain(), randNode(), randDomain(), randRegion(), cap.MemRW, cap.CleanObfuscate); err == nil {
				nodes = append(nodes, id)
			}
		case 6:
			_ = m.Revoke(randDomain(), randNode())
		case 7:
			d := randDomain()
			if d != InitialDomain {
				_ = m.KillDomain(randDomain(), d)
			}
		case 8:
			d := randDomain()
			if next()%4 == 0 {
				// Occasionally give it an entry so seal can land.
				_ = m.SetEntry(randDomain(), d, phys.Addr(uint64(pick(512))*pg))
			}
			_, _ = m.Seal(randDomain(), d)
		case 9:
			_, _ = m.Attest(randDomain(), []byte("fuzz"))
		case 10:
			// Containment path under fuzz: force-kill with monitor
			// authority, exactly what a machine check triggers.
			_ = m.ForceKill(randDomain())
		case 11:
			_ = m.Launch(randDomain(), phys.CoreID(pick(2)))
		case 12:
			// Exec-capable share, so fuzz domains can end up holding
			// runnable (and re-shareable) code pages.
			if id, err := m.Share(randDomain(), randNode(), randDomain(), randRegion(), cap.MemRWX|cap.RightShare, cap.CleanZero); err == nil {
				nodes = append(nodes, id)
			}
		case 13:
			// Delegate one of dom0's core capabilities, the prerequisite
			// for the target ever being dispatched.
			c := phys.CoreID(pick(2))
			if n, ok := dom0CoreNode(c); ok {
				if id, err := m.Share(InitialDomain, n, randDomain(), cap.CoreResource(c), cap.RightRun, cap.CleanNone); err == nil {
					nodes = append(nodes, id)
				}
			}
		case 14:
			// Plant a yielding tenant and schedule it: copy a CallYield
			// loop into a page, grant it RWX, set the entry, enqueue.
			// Each step is allowed to fail (the page may be gone, the
			// domain sealed or dead) — the stream just moves on.
			if !schedOn {
				m.SetSchedPolicy(&sched.Policy{Quantum: 16, Steal: true, Seed: 1})
				schedOn = true
			}
			d := randDomain()
			page := uint64(600 + pick(128))
			base := phys.Addr(page * pg)
			a := hw.NewAsm()
			a.Movi(10, uint32(1+pick(4)))
			a.Movi(12, 1)
			a.Label("loop")
			a.Movi(0, uint32(CallYield))
			a.Vmcall()
			a.Sub(10, 10, 12)
			a.Jnz(10, "loop")
			a.Hlt()
			_ = m.CopyInto(InitialDomain, base, a.MustAssemble(base))
			if id, err := m.Grant(InitialDomain, randNode(), d, cap.MemResource(phys.MakeRegion(base, pg)), cap.MemRWX, cap.CleanNone); err == nil {
				nodes = append(nodes, id)
			}
			_ = m.SetEntry(InitialDomain, d, base)
			_ = m.Schedule(d)
		case 15:
			// A scheduled run burst: time-multiplex whatever tenants the
			// stream managed to enqueue over both cores.
			if schedOn {
				_, _ = m.RunCores(256)
			}
		case 16:
			// Batched ABI: register a ring wherever the stream points —
			// unowned memory, overlapping an earlier ring, zero or
			// oversized capacities all get their shot at the validator.
			d := randDomain()
			base := phys.Addr(uint64(pick(512)) * pg)
			entries := uint64(pick(9)) // 0..8: 0 must be rejected
			if m.RingSetup(d, base, entries) == nil {
				rings[d] = struct {
					base    phys.Addr
					entries uint64
				}{base, entries}
			}
		case 17:
			// Enqueue one descriptor with guest-level stores: random verb
			// (transfer verbs and garbage included — they must fail only
			// their own completion) and operands drawn from the live sets.
			d := randDomain()
			r, ok := rings[d]
			if !ok {
				break
			}
			mem := m.Machine().Mem
			tail, err := mem.Read64(r.base + RingOffSQTail)
			if err != nil {
				break
			}
			off := r.base + phys.Addr(RingSQOff(r.entries, tail))
			for w, v := range [6]uint64{
				uint64(pick(16)),
				uint64(randNode()),
				uint64(randDomain()),
				uint64(pick(512)) * pg,
				uint64(pick(4)+1) * pg,
				uint64(cap.MemRW | cap.RightShare),
			} {
				if mem.Write64(off+phys.Addr(8*w), v) != nil {
					break
				}
			}
			_ = mem.Write64(r.base+RingOffSQTail, tail+1)
		case 18:
			// Ring the doorbell: drains under the destructive-family
			// entry with the coalesced shootdown armed, against whatever
			// state ops 16/17 (and every revoke/kill in between) left
			// behind.
			d := randDomain()
			if _, err := m.RingFlush(d); err != nil {
				delete(rings, d)
			}
		case 19:
			// Revoke burst: back-to-back detach→quiesce→reclaim cycles,
			// the hot path of the epoch engine. Arbitrary nodes from
			// arbitrary callers — most are denied, the rest cascade.
			for n := pick(3) + 1; n > 0; n-- {
				_ = m.Revoke(randDomain(), randNode())
			}
		case 20:
			// Create+share+revoke churn: a subtree is born and torn down
			// inside one op, so limbo records and the transition cache
			// see maximum turnover.
			if d, err := m.CreateDomain(randDomain(), "churn"); err == nil {
				domains = append(domains, d)
				if id, err := m.Share(InitialDomain, randNode(), d, randRegion(), cap.MemRW|cap.RightShare, cap.CleanFlushTLB); err == nil {
					_ = m.Revoke(InitialDomain, id)
				}
			}
		case 21:
			// Revocation interleaved with a ring drain: the two
			// destructive-family entries serialise on revMu while
			// readers keep flowing — the exact contention the epoch
			// scheme exists for.
			_ = m.Revoke(randDomain(), randNode())
			d := randDomain()
			if _, err := m.RingFlush(d); err != nil {
				delete(rings, d)
			}
		case 22:
			// Concurrent doorbells with the parallel reclamation
			// pipeline opted in: every registered owner flushes from its
			// own goroutine in one burst, so partitioned drain rounds
			// race against each other, against the serial fallback, and
			// against whatever destructive ops neighbouring stream
			// positions run. Workers are reset afterwards so the rest of
			// the stream fuzzes the serial paths unchanged.
			workers := 2 + pick(3)
			var owners []DomainID
			for d := range rings {
				owners = append(owners, d)
			}
			sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
			if len(owners) == 0 {
				break
			}
			m.SetReclaimWorkers(workers)
			failed := make([]bool, len(owners))
			var wg sync.WaitGroup
			for i, d := range owners {
				wg.Add(1)
				go func(i int, d DomainID) {
					defer wg.Done()
					if _, err := m.RingFlush(d); err != nil {
						failed[i] = true
					}
				}(i, d)
			}
			wg.Wait()
			m.SetReclaimWorkers(0)
			for i, d := range owners {
				if failed[i] {
					delete(rings, d)
				}
			}
		case 23:
			// Migration pipeline: snapshot whatever domain the stream
			// points at (most refuse — shared memory, active cores,
			// rings, dom0 itself) and restore the survivors on the peer
			// monitor. Every error is tolerated; what must hold is that
			// a failed restore leaves no half-state and a departed
			// source scrubs (both trace-checked on the source world).
			snap, err := m.SnapshotDomain(randDomain())
			if err != nil {
				break
			}
			if peer == nil {
				peer = bootWorld(tb, BackendVTX)
			}
			if id, err := peer.RestoreDomain(InitialDomain, dom0MemNode(tb, peer), nil, snap); err == nil && next()%2 == 0 {
				_ = peer.ForceKill(id)
			}
		}
		steps++
		if steps%32 == 0 {
			checkIsolationInvariants(tb, m, domains)
		}
	}
	checkIsolationInvariants(tb, m, domains)
}

// FuzzMonitorAPI is the native fuzz entry point. Seed corpus lives in
// testdata/fuzz/FuzzMonitorAPI; CI runs a short -fuzz smoke on top of
// the corpus replay that ordinary `go test` already performs. Every
// run executes against a traced world with the online invariant
// checker as a second oracle; a violating input dumps its trace to
// $TYCHE_TRACE_DIR for the nightly job to upload.
func FuzzMonitorAPI(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip("bounded input size")
		}
		m, ck := bootTracedWorld(t, BackendVTX)
		driveMonitorOps(t, m, data)
		assertTraceClean(t, m, ck)
	})
}

// TestMonitorAPIFuzz keeps long pseudo-random op streams in the plain
// test suite (the fuzz target only replays its corpus under `go test`).
func TestMonitorAPIFuzz(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			data := make([]byte, 1600)
			rng.Read(data)
			m, ck := bootTracedWorld(t, BackendVTX)
			driveMonitorOps(t, m, data)
			assertTraceClean(t, m, ck)
		})
	}
}

// checkIsolationInvariants cross-checks the capability space against
// the hardware filters the backend programmed.
func checkIsolationInvariants(t testing.TB, m *Monitor, domains []DomainID) {
	t.Helper()
	for _, id := range domains {
		d, err := m.Domain(id)
		if err != nil || d.State() == StateDead {
			continue
		}
		ctx, err := m.DomainContext(d.Creator(), id, 0)
		if err != nil {
			ctx, err = m.DomainContext(id, id, 0)
			if err != nil {
				continue
			}
		}
		// Sample addresses: the filter must agree with the capability
		// space exactly.
		for pgN := 0; pgN < 1200; pgN += 37 {
			a := phys.Addr(pgN) * pg
			hwRead := ctx.Filter.Check(a, hw.PermR)
			capRead := m.CheckAccess(id, a, cap.RightRead)
			if hwRead != capRead {
				t.Fatalf("domain %d at %v: hardware=%v capability=%v", id, a, hwRead, capRead)
			}
		}
	}
	// Monitor self-protection must survive everything.
	mon := m.MonitorRegion()
	for _, id := range domains {
		if d, err := m.Domain(id); err != nil || d.State() == StateDead {
			continue
		}
		if m.CheckAccess(id, mon.Start, cap.RightsNone) {
			t.Fatalf("domain %d gained access to the monitor region", id)
		}
	}
	// Refcount audit: counts equal distinct owners at sampled points.
	for _, rc := range m.RefCounts() {
		if rc.Count != len(rc.Owners) {
			t.Fatalf("refcount %d != owners %v", rc.Count, rc.Owners)
		}
	}
}
