package core

import (
	"math/rand"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// TestMonitorAPIFuzz drives a long random sequence of monitor API calls
// from randomly chosen (frequently unauthorized) callers and checks the
// system-wide isolation invariants after every step. This is the
// "malicious-domain API abuse" failure-injection from DESIGN.md: no
// sequence of legal-or-rejected API calls may produce a state where the
// hardware filter of one domain admits memory the capability space says
// it does not have.
func TestMonitorAPIFuzz(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := bootWorld(t, BackendVTX)
			domains := []DomainID{InitialDomain}
			var nodes []cap.NodeID
			for _, n := range m.OwnerNodes(InitialDomain) {
				nodes = append(nodes, n.ID)
			}
			randDomain := func() DomainID { return domains[rng.Intn(len(domains))] }
			randNode := func() cap.NodeID {
				if len(nodes) == 0 {
					return 0
				}
				return nodes[rng.Intn(len(nodes))]
			}
			randRegion := func() cap.Resource {
				start := uint64(rng.Intn(1024)) * pg
				pages := uint64(rng.Intn(16) + 1)
				return cap.MemResource(phys.MakeRegion(phys.Addr(start), pages*pg))
			}
			for step := 0; step < 400; step++ {
				switch rng.Intn(10) {
				case 0:
					if id, err := m.CreateDomain(randDomain(), "fuzz"); err == nil {
						domains = append(domains, id)
					}
				case 1, 2, 3:
					if id, err := m.Share(randDomain(), randNode(), randDomain(), randRegion(), cap.MemRW|cap.RightShare, cap.CleanZero); err == nil {
						nodes = append(nodes, id)
					}
				case 4, 5:
					if id, err := m.Grant(randDomain(), randNode(), randDomain(), randRegion(), cap.MemRW, cap.CleanObfuscate); err == nil {
						nodes = append(nodes, id)
					}
				case 6:
					_ = m.Revoke(randDomain(), randNode())
				case 7:
					d := randDomain()
					if d != InitialDomain {
						_ = m.KillDomain(randDomain(), d)
					}
				case 8:
					d := randDomain()
					if rng.Intn(4) == 0 {
						// Occasionally give it an entry so seal can land.
						_ = m.SetEntry(randDomain(), d, phys.Addr(uint64(rng.Intn(512))*pg))
					}
					_, _ = m.Seal(randDomain(), d)
				case 9:
					_, _ = m.Attest(randDomain(), []byte("fuzz"))
				}
				if step%25 == 0 {
					checkIsolationInvariants(t, m, domains)
				}
			}
			checkIsolationInvariants(t, m, domains)
		})
	}
}

// checkIsolationInvariants cross-checks the capability space against
// the hardware filters the backend programmed.
func checkIsolationInvariants(t *testing.T, m *Monitor, domains []DomainID) {
	t.Helper()
	for _, id := range domains {
		d, err := m.Domain(id)
		if err != nil || d.State() == StateDead {
			continue
		}
		ctx, err := m.DomainContext(d.Creator(), id, 0)
		if err != nil {
			ctx, err = m.DomainContext(id, id, 0)
			if err != nil {
				continue
			}
		}
		// Sample addresses: the filter must agree with the capability
		// space exactly.
		for pgN := 0; pgN < 1200; pgN += 37 {
			a := phys.Addr(pgN) * pg
			hwRead := ctx.Filter.Check(a, hw.PermR)
			capRead := m.CheckAccess(id, a, cap.RightRead)
			if hwRead != capRead {
				t.Fatalf("domain %d at %v: hardware=%v capability=%v", id, a, hwRead, capRead)
			}
		}
	}
	// Monitor self-protection must survive everything.
	mon := m.MonitorRegion()
	for _, id := range domains {
		if d, err := m.Domain(id); err != nil || d.State() == StateDead {
			continue
		}
		if m.CheckAccess(id, mon.Start, cap.RightsNone) {
			t.Fatalf("domain %d gained access to the monitor region", id)
		}
	}
	// Refcount audit: counts equal distinct owners at sampled points.
	for _, rc := range m.RefCounts() {
		if rc.Count != len(rc.Owners) {
			t.Fatalf("refcount %d != owners %v", rc.Count, rc.Owners)
		}
	}
}
