//go:build !biglock

package core

import (
	"sync"
	"time"
)

// BigLockBuild reports whether this binary was built with the biglock
// tag (the PR-1 single-mutex monitor, kept for A/B comparison). The
// default build uses the epoch scheme (epoch.go): every monitor entry
// — including the revoke family — holds the top-level lock shared;
// readers additionally pin an epoch slot, destructive entries
// serialise among themselves on revMu and wait readers out with
// ep.synchronize instead of a writer lock.
const BigLockBuild = false

// monLock is the monitor's top-level lock. In the fine-grained build it
// is an RWMutex taken shared by every monitor entry (per-domain and
// per-core mutexes below it provide the actual mutual exclusion; epoch
// pins provide the revocation grace period). wlock remains for
// embedders or tests that want a genuine stop-the-world barrier; the
// monitor itself no longer takes it on any path.
//
// Both builds account the time callers spend blocked acquiring the
// lock; Monitor.LockWait exposes the totals for the C18 experiment's
// wait-share metric. The accounting uses wall time only — it never
// advances simulated clocks, so cycle counts stay bit-identical across
// builds.
type monLock struct {
	mu     sync.RWMutex
	waitNs atomicInt64
	acqs   atomicUint64
}

func (l *monLock) rlock() {
	start := time.Now()
	l.mu.RLock()
	l.account(start)
}

func (l *monLock) runlock() { l.mu.RUnlock() }

func (l *monLock) wlock() {
	start := time.Now()
	l.mu.Lock()
	l.account(start)
}

func (l *monLock) wunlock() { l.mu.Unlock() }
