//go:build !biglock

package core

import (
	"sync"
	"time"
)

// BigLockBuild reports whether this binary was built with the biglock
// tag (the PR-1 single-mutex monitor, kept for A/B comparison). The
// default build uses the fine-grained scheme: a reader/writer monitor
// lock where the common operations (delegations, transitions, VMCalls)
// hold it shared and only the revoke family (Revoke, KillDomain,
// ForceKill, containFault) holds it exclusively.
const BigLockBuild = false

// monLock is the monitor's top-level lock. In the fine-grained build it
// is an RWMutex: rlock admits concurrent monitor entries (per-domain
// and per-core mutexes below it provide the actual mutual exclusion),
// wlock drains every reader for the revocation paths, whose shootdown
// and scrub ordering invariants require the world stopped.
//
// Both builds account the time callers spend blocked acquiring the
// lock; Monitor.LockWait exposes the totals for the C18 experiment's
// wait-share metric. The accounting uses wall time only — it never
// advances simulated clocks, so cycle counts stay bit-identical across
// builds.
type monLock struct {
	mu     sync.RWMutex
	waitNs atomicInt64
	acqs   atomicUint64
}

func (l *monLock) rlock() {
	start := time.Now()
	l.mu.RLock()
	l.account(start)
}

func (l *monLock) runlock() { l.mu.RUnlock() }

func (l *monLock) wlock() {
	start := time.Now()
	l.mu.Lock()
	l.account(start)
}

func (l *monLock) wunlock() { l.mu.Unlock() }
