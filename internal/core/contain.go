package core

// Fault containment. When the hardware reports a machine check — an
// injected fault in the simulator, broken silicon or a crashed domain
// in real life — the monitor's job is Dorami-style blast-radius
// control: destroy the victim domain completely (capability subtree,
// hardware filters, TLB entries, memory contents, encryption key) while
// every other domain keeps running. The path reuses the capability
// engine's cascading revocation and adds a forced scrub: containment
// cannot trust the cleanup policies a crashed domain chose for itself.
//
// Every destruction path is a destructive-family entry (shared monitor
// lock + revMu, epoch.go) and follows the epoch discipline: publish the
// death (atomic state store), synchronize (wait out every reader that
// validated liveness before the publish), then run the irreversible
// teardown — detach, cleanups, scrub, shootdown, backend removal,
// reclaim. Readers emit their trace events before unpinning and KKill
// is emitted after the grace period, so the scrub-before-kill and
// dead-domain-silence trace invariants hold exactly as they did under
// the exclusive lock.

import (
	"sync"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// ForceKill destroys a domain with monitor authority: no caller
// authorization, cleanup policies overridden by a full scrub of the
// domain's exclusive memory. It is the containment entry point RunCore
// uses on machine checks, exposed for embedders (watchdogs, operators)
// that detect a wedged domain out-of-band. The initial domain is not
// force-killable — it is the platform's root workload; faults on it
// park the faulting core instead (see containFault).
func (m *Monitor) ForceKill(id DomainID) error {
	m.denter()
	defer m.dexit()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if id == InitialDomain {
		return m.deny("the initial domain cannot be force-killed")
	}
	m.stats.forcedKills.Add(1)
	m.emit(trace.KForceKill, id, 0, 0, 0, 0)
	return m.destroyDomain(d, true)
}

// ForceKillAll force-kills a batch of domains under ONE destructive-
// family entry with ONE shared grace period covering every death — the
// kill-storm path. Each victim is validated and its death published in
// argument order; a single epoch synchronization then covers all the
// publishes (the grace combiner counts the elided waits in
// EpochStats), and the irreversible reclaims — detach, cleanups,
// forced scrub, resync, key erase — run sequentially in the same
// order. Victims that fail validation (dead, unknown, or the initial
// domain) are skipped; the first such error is returned alongside the
// number actually killed.
func (m *Monitor) ForceKillAll(ids ...DomainID) (int, error) {
	m.denter()
	defer m.dexit()
	var (
		ticks    []destroyTicket
		pub      uint64
		firstErr error
	)
	for _, id := range ids {
		d, err := m.liveDomain(id)
		if err == nil && id == InitialDomain {
			err = m.deny("the initial domain cannot be force-killed")
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.stats.forcedKills.Add(1)
		m.emit(trace.KForceKill, id, 0, 0, 0, 0)
		t := m.destroyPublish(d)
		if t.pub > pub {
			pub = t.pub
		}
		ticks = append(ticks, t)
	}
	if len(ticks) == 0 {
		return 0, firstErr
	}
	m.ep.synchronizeShared(pub, len(ticks))
	for _, t := range ticks {
		if err := m.destroyReclaim(t, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return len(ticks), firstErr
}

// DepartKill destroys a domain on migration departure: the source-side
// crypto-erase of an attested live migration (migrate.go). It is
// ForceKill with monitor authority plus the departure contract — the
// domain's snapshot has been restored elsewhere, so the local copy's
// exclusive memory MUST be scrubbed and its encryption key dropped
// before the kill completes, or two plaintext instances of a
// confidential workload exist at once. The scrub-before-kill trace
// invariant audits exactly that: every planned region must be scrubbed
// and shot down before the KKill closes the destruction (the
// migratebug mutation elides the erase and both checkers must flag
// it — see TestMigrateMutationOracle).
func (m *Monitor) DepartKill(id DomainID) error {
	m.denter()
	defer m.dexit()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if id == InitialDomain {
		return m.deny("the initial domain cannot depart")
	}
	m.stats.forcedKills.Add(1)
	m.emit(trace.KForceKill, id, 0, 0, 0, 0)
	t := m.destroyPublish(d)
	t.depart = true
	m.ep.synchronize()
	return m.destroyReclaim(t, true)
}

// scrubZero zeroes the planned scrub regions — serially by default,
// sharded round-robin across reclaimWorkers host goroutines when the
// parallel pipeline is opted in and there is more than one region.
// Regions are normalized (disjoint), so concurrent zeroing never
// overlaps; physical memory serialises writers internally. The
// scrubbug mutation skips region 0 here AND in the accounting loop, so
// the seeded hole stays a hole in both builds.
func (m *Monitor) scrubZero(regs []phys.Region) error {
	w := int(m.reclaimWorkers.Load())
	if w > len(regs) {
		w = len(regs)
	}
	if w <= 1 || len(regs) < 2 {
		for i, r := range regs {
			if scrubSkipFirst && i == 0 {
				continue
			}
			if err := m.mach.Mem.Zero(r); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for s := 0; s < w; s++ {
		wg.Add(1)
		m.stats.scrubShards.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(regs); i += w {
				if scrubSkipFirst && i == 0 {
					continue
				}
				if err := m.mach.Mem.Zero(regs[i]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(s)
	}
	wg.Wait()
	return firstErr
}

// destroyTicket is a published-but-not-reclaimed domain death: the
// handle destroyPublish returns and destroyReclaim consumes, with the
// epoch ticket the grace period must cover in between.
type destroyTicket struct {
	d   *Domain
	tok uint64
	pub uint64
	// depart marks a migration-departure kill (DepartKill): the path the
	// migratebug mutation elides the crypto-erase on.
	depart bool
}

// destroyDomain is the shared kill path (destructive-family entry
// held). It is the epoch scheme's publish → quiesce → reclaim sequence
// end to end: publish death, wait the grace period out, then detach the
// domain's entire capability subtree with cleanups, resynchronise every
// surviving owner's hardware state, remove the backend state (which
// leaves any still-installed context of the victim denying all
// accesses), drop the encryption key, and clear scheduling state. With
// scrub set, the domain's exclusively-held memory is additionally
// zeroed and shot down from every TLB regardless of cleanup policies.
//
// The publish and reclaim halves are split so ForceKillAll can publish
// a whole storm of deaths and cover them with ONE shared grace period
// (the grace combiner); this single-victim path quiesces in between,
// exactly as before the split.
func (m *Monitor) destroyDomain(d *Domain, scrub bool) error {
	t := m.destroyPublish(d)
	m.ep.synchronize()
	return m.destroyReclaim(t, scrub)
}

// destroyPublish runs the reversible-at-no-point prefix of a kill: the
// ring teardown and the absorbing death store. After it returns every
// new entry fails the victim's liveness check; nothing irreversible
// has happened yet, so any number of publishes may stack up before one
// grace period covers them all.
func (m *Monitor) destroyPublish(d *Domain) destroyTicket {
	tok := m.opTok.Add(1)
	m.emit(trace.KOpBegin, d.id, trace.OpKill, tok, 0, 0)
	// Drop and scrub the dying domain's submission ring first: the
	// teardown revalidates the owner's access over the ring footprint
	// (skipping the header scrub if the pages were granted away), which
	// only answers correctly while the owner is still live and holds its
	// capabilities. Descriptors a dying domain managed to enqueue are
	// never executed — dead-domain silence covers queued work, not just
	// running work. A ring the victim re-registers between here and the
	// death publish is dropped unexecuted by the next drain's dead-owner
	// check.
	m.ringTeardownLocked(d.id)
	// Publish: every entry from here on fails the liveness check. The
	// store is absorbing — a concurrent seal cannot resurrect the state.
	d.setState(StateDead)
	return destroyTicket{d: d, tok: tok, pub: m.ep.publishTicket()}
}

// destroyReclaim runs the irreversible tail of a kill. The caller must
// have waited out a grace period covering t.pub since destroyPublish:
// no delegation can still add to the victim's subtree, no copy or
// dispatch relies on its memory, and every trace event such entries
// emit has its sequence number — before the KKill below.
func (m *Monitor) destroyReclaim(t destroyTicket, scrub bool) error {
	d := t.d
	defer m.emit(trace.KOpEnd, d.id, trace.OpKill, t.tok, 0, 0)
	owner := cap.OwnerID(d.id)
	var scrubRegions []phys.Region
	if scrub {
		// Exclusive regions are computed post-quiesce (no delegation in
		// flight can change them now) and before the detach destroys the
		// ownership records. Shared regions are left intact — a surviving
		// co-owner still uses them.
		for _, rc := range m.space.RefCounts() {
			if rc.Count == 1 && len(rc.Owners) == 1 && rc.Owners[0] == owner {
				scrubRegions = append(scrubRegions, rc.Region)
			}
		}
		scrubRegions = phys.NormalizeRegions(scrubRegions)
	}
	for _, r := range scrubRegions {
		m.emit(trace.KScrubPlan, d.id, 0, 0, uint64(r.Start), r.Size())
	}
	// Detach the whole subtree: the victim's capabilities (and all
	// derived ones) leave the index, while grant suspensions persist so
	// parents cannot re-delegate regions that are about to be scrubbed.
	det := m.space.DetachOwner(owner)
	m.stats.revocations.Add(1)
	m.emit(trace.KRevoke, d.id, 1, 0, 0, 0)
	if err := m.bk.ExecuteCleanups(det.Actions()); err != nil {
		return err
	}
	// Forced scrub, two phases. Zeroing — the memory traffic — fans out
	// across idle host workers when the parallel pipeline is opted in
	// (regions are normalized, hence disjoint: no two workers' writes
	// overlap). Cycle accounting, TLB shootdowns, and KScrub events stay
	// serial in plan order, so the trace and the cycle history are
	// bit-identical to the serial scrub and every KScrub still precedes
	// the KKill at each quiescent merge point.
	//
	// The migratebug mutation elides the whole erase on the departure
	// path (scrub, shootdowns, key drop) AFTER the plan was announced:
	// every KScrubPlan stays unmatched at the KKill, which is what both
	// trace checkers must flag.
	elide := departEraseElided && t.depart
	if !elide {
		if err := m.scrubZero(scrubRegions); err != nil {
			return err
		}
		for i, r := range scrubRegions {
			if scrubSkipFirst && i == 0 {
				// Seeded mutation (scrubbug build tag): the first planned
				// region is neither zeroed nor shot down — its KScrubPlan is
				// still unmatched when KKill closes the destruction.
				continue
			}
			m.mach.Clock.Advance(r.Size() / hw.CacheLineSize * m.mach.Cost.ZeroLine)
			m.mach.ShootdownRegion(r)
			m.stats.pagesScrubbed.Add(r.Pages())
			m.emit(trace.KScrub, d.id, 0, 0, uint64(r.Start), r.Size())
		}
	}
	// Scrub done: release the detached subtrees (parents regain access
	// to granted-back regions), resynchronise the survivors' hardware,
	// and queue the limbo records for reclamation after the next grace
	// period.
	m.space.Release(det)
	if err := m.resyncAfterRevocation(det.Actions(), det.ParentOwners()...); err != nil {
		return err
	}
	m.ep.deferFree(func() { m.space.Reclaim(det) })
	if err := m.bk.RemoveDomain(owner); err != nil {
		return err
	}
	if !elide {
		m.cryptoErase(d.id)
	}
	// Clear scheduling state referring to the dead domain. Core run
	// loops hold their sched mutex only briefly — take each in turn.
	for _, sc := range m.sched {
		sc.mu.Lock()
		if sc.hasCur && sc.cur == d.id {
			sc.cur, sc.hasCur = 0, false
		}
		sc.mu.Unlock()
	}
	// Purge the dead domain's queued vCPUs from the multi-tenant run
	// queue. Any dispatch that validated liveness before the death
	// publish has retired inside the grace period above; dispatches
	// after it fail the liveness check — so a killed domain is never
	// dispatched again (the trace oracle's dead-domain-silence property
	// over KTransition checks it).
	m.schedPurge(d.id)
	m.emit(trace.KKill, d.id, 0, 0, 0, 0)
	return nil
}

// containFault handles a machine check taken on core while victim ran
// (destructive-family entry held). The victim is force-killed and the
// core's call stack discarded; survivors on other cores are untouched.
// A fault while the initial domain ran only parks the core — dom0 holds
// the platform's root capabilities, and destroying it would take down
// every descendant, the opposite of containment.
func (m *Monitor) containFault(core phys.CoreID, victim DomainID) error {
	m.stats.machineChecks.Add(1)
	m.emitCore(core, trace.KContain, victim, 0, 0, 0, 0)
	if sc, ok := m.sched[core]; ok {
		sc.mu.Lock()
		sc.frames = nil
		sc.cur, sc.hasCur = 0, false
		sc.mu.Unlock()
	}
	m.stats.coresParked.Add(1)
	d, ok := m.tab.Load().doms[victim]
	if !ok || d.State() == StateDead {
		// Nothing live was running (the fault hit a half-torn-down
		// domain); parking the core is the whole containment.
		return nil
	}
	if victim == InitialDomain {
		return nil
	}
	m.stats.forcedKills.Add(1)
	m.emit(trace.KForceKill, victim, 0, 0, 0, 0)
	return m.destroyDomain(d, true)
}
