package core

// Fault containment. When the hardware reports a machine check — an
// injected fault in the simulator, broken silicon or a crashed domain
// in real life — the monitor's job is Dorami-style blast-radius
// control: destroy the victim domain completely (capability subtree,
// hardware filters, TLB entries, memory contents, encryption key) while
// every other domain keeps running. The path reuses the capability
// engine's cascading revocation and adds a forced scrub: containment
// cannot trust the cleanup policies a crashed domain chose for itself.
//
// Every destruction path is a destructive-family entry (shared monitor
// lock + revMu, epoch.go) and follows the epoch discipline: publish the
// death (atomic state store), synchronize (wait out every reader that
// validated liveness before the publish), then run the irreversible
// teardown — detach, cleanups, scrub, shootdown, backend removal,
// reclaim. Readers emit their trace events before unpinning and KKill
// is emitted after the grace period, so the scrub-before-kill and
// dead-domain-silence trace invariants hold exactly as they did under
// the exclusive lock.

import (
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// ForceKill destroys a domain with monitor authority: no caller
// authorization, cleanup policies overridden by a full scrub of the
// domain's exclusive memory. It is the containment entry point RunCore
// uses on machine checks, exposed for embedders (watchdogs, operators)
// that detect a wedged domain out-of-band. The initial domain is not
// force-killable — it is the platform's root workload; faults on it
// park the faulting core instead (see containFault).
func (m *Monitor) ForceKill(id DomainID) error {
	m.denter()
	defer m.dexit()
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if id == InitialDomain {
		return m.deny("the initial domain cannot be force-killed")
	}
	m.stats.forcedKills.Add(1)
	m.emit(trace.KForceKill, id, 0, 0, 0, 0)
	return m.destroyDomain(d, true)
}

// destroyDomain is the shared kill path (destructive-family entry
// held). It is the epoch scheme's publish → quiesce → reclaim sequence
// end to end: publish death, wait the grace period out, then detach the
// domain's entire capability subtree with cleanups, resynchronise every
// surviving owner's hardware state, remove the backend state (which
// leaves any still-installed context of the victim denying all
// accesses), drop the encryption key, and clear scheduling state. With
// scrub set, the domain's exclusively-held memory is additionally
// zeroed and shot down from every TLB regardless of cleanup policies.
func (m *Monitor) destroyDomain(d *Domain, scrub bool) error {
	tok := m.opTok.Add(1)
	m.emit(trace.KOpBegin, d.id, trace.OpKill, tok, 0, 0)
	defer m.emit(trace.KOpEnd, d.id, trace.OpKill, tok, 0, 0)
	owner := cap.OwnerID(d.id)
	// Drop and scrub the dying domain's submission ring first: the
	// teardown revalidates the owner's access over the ring footprint
	// (skipping the header scrub if the pages were granted away), which
	// only answers correctly while the owner is still live and holds its
	// capabilities. Descriptors a dying domain managed to enqueue are
	// never executed — dead-domain silence covers queued work, not just
	// running work. A ring the victim re-registers between here and the
	// death publish is dropped unexecuted by the next drain's dead-owner
	// check.
	m.ringTeardownLocked(d.id)
	// Publish: every entry from here on fails the liveness check. The
	// store is absorbing — a concurrent seal cannot resurrect the state.
	d.setState(StateDead)
	// Quiesce: wait for every entry that validated liveness (or
	// capability access) before the publish. After this, no delegation
	// can add to the victim's subtree, no copy or dispatch relies on its
	// memory, and every trace event such entries emit has its sequence
	// number — before the KKill below.
	m.ep.synchronize()
	var scrubRegions []phys.Region
	if scrub {
		// Exclusive regions are computed post-quiesce (no delegation in
		// flight can change them now) and before the detach destroys the
		// ownership records. Shared regions are left intact — a surviving
		// co-owner still uses them.
		for _, rc := range m.space.RefCounts() {
			if rc.Count == 1 && len(rc.Owners) == 1 && rc.Owners[0] == owner {
				scrubRegions = append(scrubRegions, rc.Region)
			}
		}
		scrubRegions = phys.NormalizeRegions(scrubRegions)
	}
	for _, r := range scrubRegions {
		m.emit(trace.KScrubPlan, d.id, 0, 0, uint64(r.Start), r.Size())
	}
	// Detach the whole subtree: the victim's capabilities (and all
	// derived ones) leave the index, while grant suspensions persist so
	// parents cannot re-delegate regions that are about to be scrubbed.
	det := m.space.DetachOwner(owner)
	m.stats.revocations.Add(1)
	m.emit(trace.KRevoke, d.id, 1, 0, 0, 0)
	if err := m.bk.ExecuteCleanups(det.Actions()); err != nil {
		return err
	}
	for i, r := range scrubRegions {
		if scrubSkipFirst && i == 0 {
			// Seeded mutation (scrubbug build tag): the first planned
			// region is neither zeroed nor shot down — its KScrubPlan is
			// still unmatched when KKill closes the destruction.
			continue
		}
		if err := m.mach.Mem.Zero(r); err != nil {
			return err
		}
		m.mach.Clock.Advance(r.Size() / hw.CacheLineSize * m.mach.Cost.ZeroLine)
		m.mach.ShootdownRegion(r)
		m.stats.pagesScrubbed.Add(r.Pages())
		m.emit(trace.KScrub, d.id, 0, 0, uint64(r.Start), r.Size())
	}
	// Scrub done: release the detached subtrees (parents regain access
	// to granted-back regions), resynchronise the survivors' hardware,
	// and queue the limbo records for reclamation after the next grace
	// period.
	m.space.Release(det)
	if err := m.resyncAfterRevocation(det.Actions()); err != nil {
		return err
	}
	m.ep.deferFree(func() { m.space.Reclaim(det) })
	if err := m.bk.RemoveDomain(owner); err != nil {
		return err
	}
	m.cryptoErase(d.id)
	// Clear scheduling state referring to the dead domain. Core run
	// loops hold their sched mutex only briefly — take each in turn.
	for _, sc := range m.sched {
		sc.mu.Lock()
		if sc.hasCur && sc.cur == d.id {
			sc.cur, sc.hasCur = 0, false
		}
		sc.mu.Unlock()
	}
	// Purge the dead domain's queued vCPUs from the multi-tenant run
	// queue. Any dispatch that validated liveness before the death
	// publish has retired inside the grace period above; dispatches
	// after it fail the liveness check — so a killed domain is never
	// dispatched again (the trace oracle's dead-domain-silence property
	// over KTransition checks it).
	m.schedPurge(d.id)
	m.emit(trace.KKill, d.id, 0, 0, 0, 0)
	return nil
}

// containFault handles a machine check taken on core while victim ran
// (destructive-family entry held). The victim is force-killed and the
// core's call stack discarded; survivors on other cores are untouched.
// A fault while the initial domain ran only parks the core — dom0 holds
// the platform's root capabilities, and destroying it would take down
// every descendant, the opposite of containment.
func (m *Monitor) containFault(core phys.CoreID, victim DomainID) error {
	m.stats.machineChecks.Add(1)
	m.emitCore(core, trace.KContain, victim, 0, 0, 0, 0)
	if sc, ok := m.sched[core]; ok {
		sc.mu.Lock()
		sc.frames = nil
		sc.cur, sc.hasCur = 0, false
		sc.mu.Unlock()
	}
	m.stats.coresParked.Add(1)
	d, ok := m.tab.Load().doms[victim]
	if !ok || d.State() == StateDead {
		// Nothing live was running (the fault hit a half-torn-down
		// domain); parking the core is the whole containment.
		return nil
	}
	if victim == InitialDomain {
		return nil
	}
	m.stats.forcedKills.Add(1)
	m.emit(trace.KForceKill, victim, 0, 0, 0, 0)
	return m.destroyDomain(d, true)
}
