package core

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// TestGuestDrivenSharing exercises the legislative power entirely from
// interpreted guest code: domain A shares a page of its exclusively
// granted memory with domain B via the VMCALL ABI, B reads it, and A
// revokes — after which B's access faults. No Go-level libtyche calls
// touch the capability space mid-flow; "software running in any trust
// domain can access the isolation monitor API" (§3.2) literally.
func TestGuestDrivenSharing(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}

	domA, err := m.CreateDomain(InitialDomain, "sharer")
	if err != nil {
		t.Fatal(err)
	}
	domB, err := m.CreateDomain(InitialDomain, "reader")
	if err != nil {
		t.Fatal(err)
	}

	// A's memory: code page 64 + data page 65 (holds the secret 0xabcd).
	aRegion := phys.MakeRegion(64*pg, 2*pg)
	dataPage := phys.Addr(65 * pg)
	if err := m.Machine().Mem.Write64(dataPage, 0xabcd); err != nil {
		t.Fatal(err)
	}
	// B's code at page 72: read A's data page, log it, halt.
	bCode := hw.NewAsm()
	bCode.Movi(1, uint32(dataPage))
	bCode.Ld(2, 1, 0)
	bCode.Mov(1, 2)
	bCode.Movi(0, uint32(CallLog)).Vmcall()
	bCode.Hlt()
	if err := m.CopyInto(InitialDomain, 72*pg, bCode.MustAssemble(72*pg)); err != nil {
		t.Fatal(err)
	}
	bNode, err := m.Grant(InitialDomain, node, domB, cap.MemResource(phys.MakeRegion(72*pg, pg)), cap.MemRWX, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	_ = bNode
	for _, d := range []DomainID{domA, domB} {
		if _, err := m.Share(InitialDomain, coreNode, d, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
	}

	// A's program: share [dataPage, +4096) from its own capability to B
	// with read rights and zero-on-revoke cleanup, log the returned node
	// id, then halt.
	rights := uint32(cap.RightRead) | uint32(cap.CleanZero)<<16
	// A must know its capability node id: the grant below returns it,
	// and the test patches it into the immediate. Build after granting.
	aGrant, err := m.Grant(InitialDomain, node, domA, cap.MemResource(aRegion), cap.MemRWX|cap.RightShare|cap.RightGrant, cap.CleanObfuscate)
	if err != nil {
		t.Fatal(err)
	}
	aCode := hw.NewAsm()
	aCode.Movi(0, uint32(CallShare))
	aCode.Movi(1, uint32(aGrant))
	aCode.Movi(2, uint32(domB))
	aCode.Movi(3, uint32(dataPage))
	aCode.Movi(4, uint32(pg))
	aCode.Movi(5, rights)
	aCode.Vmcall()
	aCode.Mov(6, 1) // stash the new node id
	aCode.Mov(1, 0)
	aCode.Movi(0, uint32(CallLog)).Vmcall() // log status
	aCode.Mov(1, 6)
	aCode.Movi(0, uint32(CallLog)).Vmcall() // log node id
	aCode.Hlt()
	// A's code was already granted away (page 64) — the test wrote it
	// before? No: write it now via A itself.
	if err := m.CopyInto(domA, 64*pg, aCode.MustAssemble(64*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, domA, 64*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, domB, 72*pg); err != nil {
		t.Fatal(err)
	}

	// Before the share: B cannot read A's data.
	if m.CheckAccess(domB, dataPage, cap.RightRead) {
		t.Fatal("B has access before the share")
	}

	// Run A: it performs the share from guest code.
	if err := m.Launch(domA, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCore(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("A's run: %v", res.Trap)
	}
	dA, _ := m.Domain(domA)
	logs := dA.Log()
	if len(logs) != 2 || logs[0] != StatusOK {
		t.Fatalf("A's logs = %v", logs)
	}
	sharedNode := cap.NodeID(logs[1])

	// B now reads the page through hardware.
	if err := m.Launch(domB, 0); err != nil {
		t.Fatal(err)
	}
	res, err = m.RunCore(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("B's run: %v", res.Trap)
	}
	dB, _ := m.Domain(domB)
	if lb := dB.Log(); len(lb) != 1 || lb[0] != 0xabcd {
		t.Fatalf("B's logs = %v", lb)
	}
	if m.RefCounts() == nil {
		t.Fatal("no refcounts")
	}

	// A revokes from guest code too.
	aRevoke := hw.NewAsm()
	aRevoke.Movi(0, uint32(CallRevoke))
	aRevoke.Movi(1, uint32(sharedNode))
	aRevoke.Vmcall()
	aRevoke.Mov(1, 0)
	aRevoke.Movi(0, uint32(CallLog)).Vmcall()
	aRevoke.Hlt()
	if err := m.CopyInto(domA, 64*pg, aRevoke.MustAssemble(64*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(domA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 1000); err != nil {
		t.Fatal(err)
	}
	if lg := dA.Log(); lg[len(lg)-1] != StatusOK {
		t.Fatalf("revoke status = %v", lg)
	}
	// B's re-read faults, and the page was zeroed per the cleanup A
	// chose at share time.
	if err := m.Launch(domB, 0); err != nil {
		t.Fatal(err)
	}
	res, err = m.RunCore(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapFault || res.Trap.Addr != dataPage {
		t.Fatalf("B after revoke: %v", res.Trap)
	}
	v, _ := m.Machine().Mem.Read64(dataPage)
	if v != 0 {
		t.Fatalf("data not zeroed on guest-driven revoke: %#x", v)
	}
}

// TestGuestSealSelf: a domain seals itself from guest code; afterwards
// it cannot receive new resources.
func TestGuestSealSelf(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	var coreNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == 0 {
			coreNode = n.ID
		}
	}
	dom, err := m.CreateDomain(InitialDomain, "selfseal")
	if err != nil {
		t.Fatal(err)
	}
	a := hw.NewAsm()
	a.Movi(0, uint32(CallSealSelf)).Vmcall()
	a.Mov(1, 0)
	a.Movi(0, uint32(CallLog)).Vmcall()
	a.Hlt()
	if err := m.CopyInto(InitialDomain, 64*pg, a.MustAssemble(64*pg)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, dom, cap.MemResource(phys.MakeRegion(64*pg, pg)), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Share(InitialDomain, coreNode, dom, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, dom, 64*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(dom, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 100); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Domain(dom)
	if logs := d.Log(); len(logs) != 1 || logs[0] != StatusOK {
		t.Fatalf("logs = %v", logs)
	}
	if d.State() != StateSealed {
		t.Fatalf("state = %v", d.State())
	}
	if _, err := m.Share(InitialDomain, node, dom, memRes(100, 1), cap.MemRW, cap.CleanNone); err == nil {
		t.Fatal("sealed domain received a share")
	}
}
