package tpm

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func newTPM(t *testing.T) *TPM {
	t.Helper()
	tp, err := New(nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tp
}

func TestExtendSemantics(t *testing.T) {
	tp := newTPM(t)
	zero, err := tp.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != (Digest{}) {
		t.Fatal("PCRs must start zeroed")
	}
	d := Measure([]byte("monitor code"))
	if err := tp.Extend(PCRMonitor, d, "monitor"); err != nil {
		t.Fatal(err)
	}
	got, _ := tp.PCR(PCRMonitor)
	h := sha256.New()
	h.Write(make([]byte, DigestSize))
	h.Write(d[:])
	var want Digest
	copy(want[:], h.Sum(nil))
	if got != want {
		t.Fatalf("extend result mismatch: %v vs %v", got, want)
	}
	// Extends are order-sensitive (tamper evidence).
	tp2 := newTPM(t)
	d2 := Measure([]byte("other"))
	tp.Extend(PCRMonitor, d2, "b")
	tp2.Extend(PCRMonitor, d2, "b")
	tp2.Extend(PCRMonitor, d, "a")
	a, _ := tp.PCR(PCRMonitor)
	b, _ := tp2.PCR(PCRMonitor)
	if a == b {
		t.Fatal("different extend orders must yield different PCRs")
	}
}

func TestExtendOutOfRange(t *testing.T) {
	tp := newTPM(t)
	if err := tp.Extend(NumPCRs, Digest{}, "x"); err == nil {
		t.Fatal("expected out-of-range extend to fail")
	}
	if err := tp.Extend(-1, Digest{}, "x"); err == nil {
		t.Fatal("expected negative index to fail")
	}
	if _, err := tp.PCR(NumPCRs); err == nil {
		t.Fatal("expected out-of-range read to fail")
	}
}

func TestQuoteVerify(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRMonitor, Measure([]byte("tyche")), "monitor")
	nonce := []byte("fresh-nonce-123")
	user := []byte("monitor-attestation-key")
	q, err := tp.MakeQuote(nonce, []int{PCRFirmware, PCRMonitor}, user)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(tp.EndorsementKey(), q); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !bytes.Equal(q.Nonce, nonce) {
		t.Fatal("nonce not preserved")
	}
	v, ok := QuotedPCR(q, PCRMonitor)
	if !ok {
		t.Fatal("PCR 17 missing from quote")
	}
	live, _ := tp.PCR(PCRMonitor)
	if v != live {
		t.Fatal("quoted PCR differs from live PCR")
	}
	if _, ok := QuotedPCR(q, 5); ok {
		t.Fatal("unselected PCR should be absent")
	}
}

func TestQuoteTamperDetected(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRMonitor, Measure([]byte("tyche")), "monitor")
	q, err := tp.MakeQuote([]byte("n"), []int{PCRMonitor}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ek := tp.EndorsementKey()

	tamper := *q
	tamper.PCRValue = append([]Digest(nil), q.PCRValue...)
	tamper.PCRValue[0] = Measure([]byte("evil monitor"))
	if err := VerifyQuote(ek, &tamper); err == nil {
		t.Fatal("tampered PCR value must fail verification")
	}

	replay := *q
	replay.Nonce = []byte("stale")
	if err := VerifyQuote(ek, &replay); err == nil {
		t.Fatal("modified nonce must fail verification")
	}

	wrongKey := newTPM(t)
	if err := VerifyQuote(wrongKey.EndorsementKey(), q); err == nil {
		t.Fatal("quote must not verify under a different EK")
	}

	if err := VerifyQuote(ek, nil); err == nil {
		t.Fatal("nil quote must fail")
	}
	bad := *q
	bad.PCRIndex = bad.PCRIndex[:0]
	if err := VerifyQuote(ek, &bad); err == nil {
		t.Fatal("malformed quote must fail")
	}
}

func TestQuoteOfInvalidPCR(t *testing.T) {
	tp := newTPM(t)
	if _, err := tp.MakeQuote(nil, []int{99}, nil); err == nil {
		t.Fatal("expected quote of invalid PCR to fail")
	}
}

func TestEventLogReplay(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRFirmware, Measure([]byte("bios")), "bios")
	tp.Extend(PCRMonitor, Measure([]byte("tyche")), "tyche")
	tp.Extend(PCRMonitor, Measure([]byte("config")), "config")
	if !tp.ReplayLog() {
		t.Fatal("honest log must replay to live PCRs")
	}
	log := tp.EventLog()
	if len(log) != 3 || log[1].Desc != "tyche" {
		t.Fatalf("log = %+v", log)
	}
	// EventLog returns a copy: mutating it must not affect replay.
	log[0].Digest = Measure([]byte("evil"))
	if !tp.ReplayLog() {
		t.Fatal("external log mutation leaked into TPM state")
	}
}

func TestEndorsementKeyIsCopy(t *testing.T) {
	tp := newTPM(t)
	ek := tp.EndorsementKey()
	ek[0] ^= 0xff
	q, err := tp.MakeQuote([]byte("n"), []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(tp.EndorsementKey(), q); err != nil {
		t.Fatal("mutating returned key must not corrupt TPM state")
	}
}
