// Package tpm models an industry-standard TPM: the hardware root of
// trust the paper's judiciary power is anchored in (§3.4: "a hardware
// root of trust, such as an industry-standard TPM, measures the
// machine's boot-process and provides a signed remotely-verifiable
// attestation that the machine is under the complete control of a
// specific monitor implementation").
//
// The model implements the parts the two-tier attestation protocol
// needs: a bank of SHA-256 PCRs with extend-only semantics, an event
// log, an endorsement key, and signed quotes over selected PCRs. All
// cryptography is real (stdlib SHA-256 and Ed25519); only the silicon is
// simulated.
package tpm

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// NumPCRs is the number of platform configuration registers, matching
// TPM 2.0's standard allocation.
const NumPCRs = 24

// Well-known PCR assignments used by the simulated platform.
const (
	// PCRFirmware records the platform firmware measurement.
	PCRFirmware = 0
	// PCRMonitor records the isolation monitor's code+config measurement
	// (the DRTM-style launch measurement TXT would produce).
	PCRMonitor = 17
)

// DigestSize is the size of a PCR digest (SHA-256).
const DigestSize = sha256.Size

// Digest is a SHA-256 measurement value.
type Digest [DigestSize]byte

func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// Measure hashes arbitrary content into a Digest.
func Measure(data []byte) Digest { return sha256.Sum256(data) }

// Event is one entry in the TPM's measured-boot event log.
type Event struct {
	PCR    int
	Digest Digest
	Desc   string
}

// TPM is a simulated trusted platform module.
type TPM struct {
	pcrs [NumPCRs]Digest
	log  []Event

	ek  ed25519.PrivateKey
	ekp ed25519.PublicKey

	// quoteHook, when set, is consulted at the top of MakeQuote; a
	// non-nil error aborts the quote. Fault injection uses it to model
	// transient root-of-trust failures. Guarded by hookMu so concurrent
	// quoting races neither the hook pointer nor its internal state.
	hookMu    sync.Mutex
	quoteHook func() error
}

// SetQuoteHook installs (or, with nil, removes) a hook consulted before
// every MakeQuote. The hook runs under the TPM's internal lock.
func (t *TPM) SetQuoteHook(h func() error) {
	t.hookMu.Lock()
	defer t.hookMu.Unlock()
	t.quoteHook = h
}

// checkQuoteHook runs the installed hook, if any.
func (t *TPM) checkQuoteHook() error {
	t.hookMu.Lock()
	defer t.hookMu.Unlock()
	if t.quoteHook == nil {
		return nil
	}
	return t.quoteHook()
}

// New manufactures a TPM with a fresh endorsement key drawn from rng
// (nil selects crypto/rand).
func New(rng io.Reader) (*TPM, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating endorsement key: %w", err)
	}
	return &TPM{ek: priv, ekp: pub}, nil
}

// EndorsementKey returns the public endorsement key. In a real
// deployment this is certified by the manufacturer; verifiers treat it
// as the trust anchor.
func (t *TPM) EndorsementKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(t.ekp))
	copy(out, t.ekp)
	return out
}

// Extend folds digest into PCR idx: pcr = SHA-256(pcr || digest). The
// extend-only semantics are what make the log tamper-evident.
func (t *TPM) Extend(idx int, digest Digest, desc string) error {
	if idx < 0 || idx >= NumPCRs {
		return fmt.Errorf("tpm: PCR index %d out of range", idx)
	}
	h := sha256.New()
	h.Write(t.pcrs[idx][:])
	h.Write(digest[:])
	copy(t.pcrs[idx][:], h.Sum(nil))
	t.log = append(t.log, Event{PCR: idx, Digest: digest, Desc: desc})
	return nil
}

// PCR returns the current value of PCR idx.
func (t *TPM) PCR(idx int) (Digest, error) {
	if idx < 0 || idx >= NumPCRs {
		return Digest{}, fmt.Errorf("tpm: PCR index %d out of range", idx)
	}
	return t.pcrs[idx], nil
}

// EventLog returns a copy of the measured-boot event log.
func (t *TPM) EventLog() []Event {
	out := make([]Event, len(t.log))
	copy(out, t.log)
	return out
}

// Quote is a signed attestation of selected PCR values bound to a
// caller-chosen nonce (freshness) and arbitrary caller data (used to
// bind the monitor's attestation key to the measured boot).
type Quote struct {
	Nonce    []byte
	PCRIndex []int
	PCRValue []Digest
	UserData []byte
	Sig      []byte
}

// quoteMessage builds the canonical byte string that is signed.
func quoteMessage(nonce []byte, idx []int, vals []Digest, userData []byte) []byte {
	var b bytes.Buffer
	b.WriteString("tpm-quote-v1")
	writeBytes(&b, nonce)
	binary.Write(&b, binary.LittleEndian, uint32(len(idx)))
	for i, ix := range idx {
		binary.Write(&b, binary.LittleEndian, uint32(ix))
		b.Write(vals[i][:])
	}
	writeBytes(&b, userData)
	return b.Bytes()
}

func writeBytes(b *bytes.Buffer, p []byte) {
	binary.Write(b, binary.LittleEndian, uint32(len(p)))
	b.Write(p)
}

// MakeQuote signs the current values of the selected PCRs.
func (t *TPM) MakeQuote(nonce []byte, pcrs []int, userData []byte) (*Quote, error) {
	idx := make([]int, len(pcrs))
	if err := t.checkQuoteHook(); err != nil {
		return nil, fmt.Errorf("tpm: quote: %w", err)
	}
	copy(idx, pcrs)
	vals := make([]Digest, len(idx))
	for i, ix := range idx {
		v, err := t.PCR(ix)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	msg := quoteMessage(nonce, idx, vals, userData)
	q := &Quote{
		Nonce:    append([]byte(nil), nonce...),
		PCRIndex: idx,
		PCRValue: vals,
		UserData: append([]byte(nil), userData...),
		Sig:      ed25519.Sign(t.ek, msg),
	}
	return q, nil
}

// ErrBadQuote reports a quote that fails signature verification.
var ErrBadQuote = errors.New("tpm: quote signature invalid")

// VerifyQuote checks q against the endorsement public key ek.
func VerifyQuote(ek ed25519.PublicKey, q *Quote) error {
	if q == nil {
		return errors.New("tpm: nil quote")
	}
	if len(q.PCRIndex) != len(q.PCRValue) {
		return errors.New("tpm: malformed quote: index/value length mismatch")
	}
	msg := quoteMessage(q.Nonce, q.PCRIndex, q.PCRValue, q.UserData)
	if !ed25519.Verify(ek, msg, q.Sig) {
		return ErrBadQuote
	}
	return nil
}

// QuotedPCR extracts PCR idx's value from a (verified) quote.
func QuotedPCR(q *Quote, idx int) (Digest, bool) {
	for i, ix := range q.PCRIndex {
		if ix == idx {
			return q.PCRValue[i], true
		}
	}
	return Digest{}, false
}

// ReplayLog recomputes the PCR values implied by the event log and
// reports whether they match the live PCR bank — the standard
// log-vs-PCR consistency check a verifier performs.
func (t *TPM) ReplayLog() bool {
	var replay [NumPCRs]Digest
	for _, e := range t.log {
		h := sha256.New()
		h.Write(replay[e.PCR][:])
		h.Write(e.Digest[:])
		copy(replay[e.PCR][:], h.Sum(nil))
	}
	return replay == t.pcrs
}
