package image

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds Decode random and mutated-valid inputs:
// the loader is the attack surface a malicious image reaches first, so
// it must fail cleanly on anything.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Pure noise.
	for i := 0; i < 300; i++ {
		buf := make([]byte, rng.Intn(512))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on noise: %v", r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
	// Mutations of a valid encoding: every single-byte corruption must
	// either decode to a *valid* image or error — never panic.
	valid, err := sampleImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutation at byte %d: %v", i, r)
				}
			}()
			img, err := Decode(mut)
			if err == nil {
				if verr := img.Validate(); verr != nil {
					t.Fatalf("Decode returned an invalid image (mutation at %d): %v", i, verr)
				}
			}
		}()
	}
	// Truncations.
	for i := 0; i < len(valid); i += 7 {
		if _, err := Decode(valid[:i]); err == nil && i < len(valid)-1 {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}
