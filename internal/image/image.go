// Package image defines the loadable domain image format: the stand-in
// for libtyche's "ELF binary + manifest" (§4.2: "the library loads an
// ELF binary as a domain using a manifest that describes which segments
// should run in which privilege ring, whether they are shared or
// confidential, and if their content is part of the attestation or
// not").
//
// An Image is a named list of segments with per-segment policy. Layout
// against a base address is deterministic, so the measurement a domain
// will have once loaded and sealed can be computed offline (the
// tyche-hash tool) and compared against the monitor's attestation.
package image

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Magic identifies serialized images ("TYCI" little-endian + version).
const Magic = uint32(0x49435954)

// FormatVersion is the serialization version.
const FormatVersion = uint32(1)

// Segment is one loadable unit with its isolation policy.
type Segment struct {
	// Name labels the segment (".text", ".data", "shared-buf", ...).
	Name string
	// Data is the initial content; the segment occupies max(len(Data),
	// Size) bytes, zero-filled beyond Data (BSS-style).
	Data []byte
	// Size optionally extends the segment beyond its content.
	Size uint64
	// Rights are the memory rights the domain receives (subset of RWX).
	Rights cap.Rights
	// Ring selects which privilege ring inside the domain may touch the
	// segment (kernel-only segments are hidden from ring 3 by the
	// domain's first-level filter).
	Ring hw.Ring
	// Confidential segments are granted exclusively (refcount 1);
	// non-confidential segments are shared with the creator.
	Confidential bool
	// Measured segments' content is part of the seal-time measurement.
	Measured bool
}

// ByteSize returns the segment's occupied size before page rounding.
func (s *Segment) ByteSize() uint64 {
	if s.Size > uint64(len(s.Data)) {
		return s.Size
	}
	return uint64(len(s.Data))
}

// PageSize returns the page-rounded size the segment occupies in memory.
func (s *Segment) PageSize() uint64 {
	n := s.ByteSize()
	return (n + phys.PageSize - 1) &^ (phys.PageSize - 1)
}

// Validate checks the segment's internal consistency.
func (s *Segment) Validate() error {
	if s.Name == "" {
		return errors.New("image: segment without a name")
	}
	if s.ByteSize() == 0 {
		return fmt.Errorf("image: segment %q is empty", s.Name)
	}
	if !s.Rights.Subset(cap.MemRWX) {
		return fmt.Errorf("image: segment %q has non-memory rights %v", s.Name, s.Rights)
	}
	if s.Rights == cap.RightsNone {
		return fmt.Errorf("image: segment %q has no rights", s.Name)
	}
	return nil
}

// Image is a loadable domain: segments plus the entry point, expressed
// as an offset into a named segment so it survives relocation.
type Image struct {
	// Name labels the image (becomes the domain name by default).
	Name string
	// EntrySegment names the segment containing the entry point.
	EntrySegment string
	// EntryOffset is the entry's byte offset within that segment.
	EntryOffset uint64
	// Segments in load order.
	Segments []Segment
}

// Validate checks the image: named entry segment exists, entry lands
// inside it, segment names unique, segments valid.
func (img *Image) Validate() error {
	if img.Name == "" {
		return errors.New("image: image without a name")
	}
	if len(img.Segments) == 0 {
		return fmt.Errorf("image: %q has no segments", img.Name)
	}
	seen := make(map[string]bool)
	foundEntry := false
	for i := range img.Segments {
		s := &img.Segments[i]
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("image: duplicate segment %q", s.Name)
		}
		seen[s.Name] = true
		if s.Name == img.EntrySegment {
			foundEntry = true
			if img.EntryOffset >= s.ByteSize() {
				return fmt.Errorf("image: entry offset %#x beyond segment %q", img.EntryOffset, s.Name)
			}
			if !s.Rights.Has(cap.RightExec) {
				return fmt.Errorf("image: entry segment %q not executable", s.Name)
			}
		}
	}
	if !foundEntry {
		return fmt.Errorf("image: entry segment %q not found", img.EntrySegment)
	}
	return nil
}

// Segment returns the named segment, or nil.
func (img *Image) Segment(name string) *Segment {
	for i := range img.Segments {
		if img.Segments[i].Name == name {
			return &img.Segments[i]
		}
	}
	return nil
}

// TotalPages returns the image's page footprint when loaded.
func (img *Image) TotalPages() uint64 {
	var n uint64
	for i := range img.Segments {
		n += img.Segments[i].PageSize() / phys.PageSize
	}
	return n
}

// Placement locates one segment in physical memory after layout.
type Placement struct {
	Segment *Segment
	Region  phys.Region
}

// Layout places the image's segments contiguously starting at base
// (page-aligned), in declaration order, each segment page-aligned.
func (img *Image) Layout(base phys.Addr) ([]Placement, error) {
	if !base.PageAligned() {
		return nil, fmt.Errorf("image: load base %v not page-aligned", base)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	var out []Placement
	at := base
	for i := range img.Segments {
		s := &img.Segments[i]
		r := phys.MakeRegion(at, s.PageSize())
		out = append(out, Placement{Segment: s, Region: r})
		at = r.End
	}
	return out, nil
}

// Entry resolves the entry point for a layout at base.
func (img *Image) Entry(base phys.Addr) (phys.Addr, error) {
	pls, err := img.Layout(base)
	if err != nil {
		return 0, err
	}
	for _, p := range pls {
		if p.Segment.Name == img.EntrySegment {
			return p.Region.Start + phys.Addr(img.EntryOffset), nil
		}
	}
	return 0, fmt.Errorf("image: entry segment %q not placed", img.EntrySegment)
}

// Measurement predicts, offline, the measurement the monitor computes
// when the image is loaded at base and sealed: entry point plus the
// content of every measured segment (zero-padded to its page footprint,
// exactly as loaded). This is the tyche-hash path (§4.2).
func (img *Image) Measurement(base phys.Addr) (tpm.Digest, error) {
	pls, err := img.Layout(base)
	if err != nil {
		return tpm.Digest{}, err
	}
	entry, err := img.Entry(base)
	if err != nil {
		return tpm.Digest{}, err
	}
	var regions []core.MeasuredRegion
	for _, p := range pls {
		if !p.Segment.Measured {
			continue
		}
		content := make([]byte, p.Region.Size())
		copy(content, p.Segment.Data)
		regions = append(regions, core.MeasuredRegion{Region: p.Region, Content: content})
	}
	// The monitor normalizes measured regions by address; layout
	// already emits them in address order.
	return core.ComputeMeasurement(entry, regions), nil
}

// Encode serializes the image.
func (img *Image) Encode() ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, Magic)
	binary.Write(&b, binary.LittleEndian, FormatVersion)
	writeString(&b, img.Name)
	writeString(&b, img.EntrySegment)
	binary.Write(&b, binary.LittleEndian, img.EntryOffset)
	binary.Write(&b, binary.LittleEndian, uint32(len(img.Segments)))
	for i := range img.Segments {
		s := &img.Segments[i]
		writeString(&b, s.Name)
		writeBytes(&b, s.Data)
		binary.Write(&b, binary.LittleEndian, s.Size)
		binary.Write(&b, binary.LittleEndian, uint32(s.Rights))
		binary.Write(&b, binary.LittleEndian, uint32(s.Ring))
		writeBool(&b, s.Confidential)
		writeBool(&b, s.Measured)
	}
	return b.Bytes(), nil
}

// Decode parses a serialized image.
func Decode(data []byte) (*Image, error) {
	r := bytes.NewReader(data)
	var magic, version uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("image: truncated header: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("image: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("image: unsupported version %d", version)
	}
	img := &Image{}
	var err error
	if img.Name, err = readString(r); err != nil {
		return nil, err
	}
	if img.EntrySegment, err = readString(r); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &img.EntryOffset); err != nil {
		return nil, err
	}
	var nseg uint32
	if err := binary.Read(r, binary.LittleEndian, &nseg); err != nil {
		return nil, err
	}
	const maxSegments = 1 << 12
	if nseg > maxSegments {
		return nil, fmt.Errorf("image: implausible segment count %d", nseg)
	}
	for i := uint32(0); i < nseg; i++ {
		var s Segment
		if s.Name, err = readString(r); err != nil {
			return nil, err
		}
		if s.Data, err = readBytes(r); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &s.Size); err != nil {
			return nil, err
		}
		var rights, ring uint32
		if err := binary.Read(r, binary.LittleEndian, &rights); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &ring); err != nil {
			return nil, err
		}
		s.Rights = cap.Rights(rights)
		s.Ring = hw.Ring(ring)
		if s.Confidential, err = readBool(r); err != nil {
			return nil, err
		}
		if s.Measured, err = readBool(r); err != nil {
			return nil, err
		}
		img.Segments = append(img.Segments, s)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

func writeString(b *bytes.Buffer, s string) { writeBytes(b, []byte(s)) }

func writeBytes(b *bytes.Buffer, p []byte) {
	binary.Write(b, binary.LittleEndian, uint64(len(p)))
	b.Write(p)
}

func writeBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func readString(r *bytes.Reader) (string, error) {
	p, err := readBytes(r)
	return string(p), err
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("image: truncated field (%d bytes claimed, %d remain)", n, r.Len())
	}
	p := make([]byte, n)
	if _, err := r.Read(p); err != nil && n > 0 {
		return nil, err
	}
	return p, nil
}

func readBool(r *bytes.Reader) (bool, error) {
	b, err := r.ReadByte()
	return b != 0, err
}
