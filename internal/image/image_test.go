package image

import (
	"bytes"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

func sampleCode() []byte {
	a := hw.NewAsm()
	a.Movi(1, 42).Hlt()
	return a.MustAssemble(0)
}

func sampleImage() *Image {
	return NewProgram("sample", sampleCode()).
		WithData(".data", []byte{1, 2, 3, 4}).
		WithBSS(".bss", 2*phys.PageSize).
		WithShared("io", phys.PageSize)
}

func TestValidate(t *testing.T) {
	img := sampleImage()
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Image)
	}{
		{"no name", func(i *Image) { i.Name = "" }},
		{"no segments", func(i *Image) { i.Segments = nil }},
		{"dup segment", func(i *Image) { i.Segments[1].Name = ".text" }},
		{"missing entry", func(i *Image) { i.EntrySegment = ".nope" }},
		{"entry beyond", func(i *Image) { i.EntryOffset = 1 << 30 }},
		{"entry not exec", func(i *Image) { i.Segments[0].Rights = cap.MemRW }},
		{"empty segment", func(i *Image) { i.Segments[1].Data = nil }},
		{"bad rights", func(i *Image) { i.Segments[1].Rights = cap.RightRun }},
		{"no rights", func(i *Image) { i.Segments[1].Rights = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := sampleImage()
			tc.mutate(img)
			if err := img.Validate(); err == nil {
				t.Fatal("expected validation failure")
			}
		})
	}
}

func TestLayoutDeterministic(t *testing.T) {
	img := sampleImage()
	base := phys.Addr(0x10000)
	pls, err := img.Layout(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pls) != 4 {
		t.Fatalf("placements = %d", len(pls))
	}
	at := base
	for _, p := range pls {
		if p.Region.Start != at {
			t.Fatalf("segment %q at %v, want %v", p.Segment.Name, p.Region.Start, at)
		}
		if p.Region.Size() != p.Segment.PageSize() {
			t.Fatalf("segment %q size %#x", p.Segment.Name, p.Region.Size())
		}
		at = p.Region.End
	}
	if img.TotalPages() != 5 {
		t.Fatalf("total pages = %d", img.TotalPages())
	}
	entry, err := img.Entry(base)
	if err != nil || entry != base {
		t.Fatalf("entry = %v, %v", entry, err)
	}
	if _, err := img.Layout(0x123); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	img := sampleImage()
	base := phys.Addr(0x10000)
	m1, err := img.Measurement(base)
	if err != nil {
		t.Fatal(err)
	}
	// Same image, same base: same measurement.
	m2, _ := sampleImage().Measurement(base)
	if m1 != m2 {
		t.Fatal("measurement not deterministic")
	}
	// Different base: different measurement (entry and regions move).
	m3, _ := img.Measurement(0x20000)
	if m1 == m3 {
		t.Fatal("measurement must bind the load address")
	}
	// Changing measured content changes it.
	img2 := sampleImage()
	img2.Segments[1].Data[0] ^= 0xff
	m4, _ := img2.Measurement(base)
	if m1 == m4 {
		t.Fatal("measured data change not reflected")
	}
	// Changing unmeasured (shared) segment does not change it.
	img3 := sampleImage()
	img3.Segments[3].Size = 2 * phys.PageSize // moves nothing before it
	m5, _ := img3.Measurement(base)
	if m1 != m5 {
		t.Fatal("unmeasured trailing segment changed the measurement")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := sampleImage()
	img.Segments[0].Ring = hw.RingUser
	data, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.EntrySegment != img.EntrySegment || got.EntryOffset != img.EntryOffset {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Segments) != len(img.Segments) {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	for i := range img.Segments {
		a, b := &img.Segments[i], &got.Segments[i]
		if a.Name != b.Name || !bytes.Equal(a.Data, b.Data) || a.Size != b.Size ||
			a.Rights != b.Rights || a.Ring != b.Ring ||
			a.Confidential != b.Confidential || a.Measured != b.Measured {
			t.Fatalf("segment %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Measurements agree across the roundtrip.
	m1, _ := img.Measurement(0x10000)
	m2, _ := got.Measurement(0x10000)
	if m1 != m2 {
		t.Fatal("measurement changed across serialization")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("Decode(%v) accepted garbage", c)
		}
	}
	// Corrupt a valid encoding.
	data, err := sampleImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-3]
	if _, err := Decode(data); err == nil {
		t.Fatal("truncated image accepted")
	}
	// Implausible claimed length.
	bad, _ := sampleImage().Encode()
	bad[8] = 0xff // corrupt the name length field
	if _, err := Decode(bad); err == nil {
		t.Fatal("oversized field accepted")
	}
}

func TestSegmentLookupAndSizes(t *testing.T) {
	img := sampleImage()
	if img.Segment(".data") == nil || img.Segment("nope") != nil {
		t.Fatal("segment lookup wrong")
	}
	s := img.Segment(".bss")
	if s.ByteSize() != 2*phys.PageSize || s.PageSize() != 2*phys.PageSize {
		t.Fatalf("bss sizes: %d/%d", s.ByteSize(), s.PageSize())
	}
	d := img.Segment(".data")
	if d.PageSize() != phys.PageSize {
		t.Fatalf("data page size = %d", d.PageSize())
	}
}
