package image

import (
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
)

// NewProgram builds the common image shape: one confidential, measured,
// executable ".text" segment containing code, entered at offset 0.
// Further segments chain on with the With* builders.
func NewProgram(name string, code []byte) *Image {
	return &Image{
		Name:         name,
		EntrySegment: ".text",
		Segments: []Segment{{
			Name:         ".text",
			Data:         code,
			Rights:       cap.MemRX,
			Ring:         hw.RingKernel,
			Confidential: true,
			Measured:     true,
		}},
	}
}

// WithData appends a confidential, measured read-write data segment.
func (img *Image) WithData(name string, data []byte) *Image {
	img.Segments = append(img.Segments, Segment{
		Name:         name,
		Data:         data,
		Rights:       cap.MemRW,
		Ring:         hw.RingKernel,
		Confidential: true,
		Measured:     true,
	})
	return img
}

// WithBSS appends a confidential, unmeasured zeroed segment of size
// bytes (scratch memory whose content is not part of the identity).
func (img *Image) WithBSS(name string, size uint64) *Image {
	img.Segments = append(img.Segments, Segment{
		Name:         name,
		Size:         size,
		Rights:       cap.MemRW,
		Ring:         hw.RingKernel,
		Confidential: true,
		Measured:     false,
	})
	return img
}

// WithHeap appends a confidential, unmeasured RWX segment of size
// bytes: memory the domain subdivides itself, e.g. to load nested
// enclaves from (nested code must execute, so the heap carries exec).
func (img *Image) WithHeap(name string, size uint64) *Image {
	img.Segments = append(img.Segments, Segment{
		Name:         name,
		Size:         size,
		Rights:       cap.MemRWX,
		Ring:         hw.RingKernel,
		Confidential: true,
		Measured:     false,
	})
	return img
}

// WithShared appends a non-confidential read-write segment of size
// bytes: it is shared with the creator (refcount 2), forming the
// domain's explicit communication surface (§4.2: Tyche-enclaves
// "require untrusted memory regions to be explicitly shared").
func (img *Image) WithShared(name string, size uint64) *Image {
	img.Segments = append(img.Segments, Segment{
		Name:   name,
		Size:   size,
		Rights: cap.MemRW,
		Ring:   hw.RingKernel,
	})
	return img
}

// WithUserSegment appends a confidential segment restricted to ring 3
// inside the domain (compartment payloads).
func (img *Image) WithUserSegment(name string, data []byte, rights cap.Rights) *Image {
	img.Segments = append(img.Segments, Segment{
		Name:         name,
		Data:         data,
		Rights:       rights,
		Ring:         hw.RingUser,
		Confidential: true,
		Measured:     true,
	})
	return img
}
