package sched

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

func cores(ids ...int) []phys.CoreID {
	var out []phys.CoreID
	for _, id := range ids {
		out = append(out, phys.CoreID(id))
	}
	return out
}

// Placement must be a pure function of (seed, arrival order): the
// same adds land on the same queues, and a different seed rotates the
// cursor but stays deterministic.
func TestPlacementDeterministic(t *testing.T) {
	// Drain per core in ascending order, recording which *domain* each
	// slot held — the shape (three per core) is seed-invariant, the
	// domain→core assignment is what the cursor rotates.
	build := func(seed int64) []uint64 {
		s := New(Policy{Seed: seed}, cores(0, 1, 2, 3))
		var doms []uint64
		for d := uint64(10); d < 22; d++ {
			s.Add(d, 0)
		}
		for _, c := range s.Cores() {
			for {
				v, ok := s.Next(c)
				if !ok {
					break
				}
				doms = append(doms, v.Domain)
			}
		}
		return doms
	}
	a, b := build(7), build(7)
	if len(a) != 12 {
		t.Fatalf("expected 12 vCPUs drained, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := build(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seed 7 and 8 produced identical placements %v", a)
	}
}

// New must sort and deduplicate the core set so decision order never
// depends on how the caller listed the cores.
func TestCoreOrderCanonical(t *testing.T) {
	s := New(Policy{}, cores(3, 1, 1, 0, 2, 3))
	got := s.Cores()
	want := cores(0, 1, 2, 3)
	if len(got) != len(want) {
		t.Fatalf("cores = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cores = %v, want %v", got, want)
		}
	}
}

// The steal rule: an idle core takes the tail of the deepest sibling
// queue, ties toward the lowest core ID, re-homing the vCPU.
func TestWorkStealing(t *testing.T) {
	s := New(Policy{Steal: true}, cores(0, 1, 2))
	// Seed 0: placement cursor starts at core 0. Arrivals 1..5 land
	// 0,1,2,0,1 — core 0 and 1 have 2, core 2 has 1 after its own pop.
	for d := uint64(1); d <= 5; d++ {
		s.Add(d, 0)
	}
	if v, ok := s.Next(2); !ok || v.Domain != 3 || v.Stolen {
		t.Fatalf("core 2 should pop its own vCPU (domain 3), got %+v ok=%v", v, ok)
	}
	// Core 2 is now empty; cores 0 and 1 both hold 2 — the tie must
	// break to core 0, and the steal takes its *tail* (domain 4).
	v, ok := s.Next(2)
	if !ok || !v.Stolen {
		t.Fatalf("core 2 should steal, got %+v ok=%v", v, ok)
	}
	if v.Domain != 4 || v.Home != 2 {
		t.Fatalf("steal should take core 0's tail (domain 4) and re-home: %+v", v)
	}
	if s.Depth(0) != 1 || s.Depth(1) != 2 {
		t.Fatalf("queue depths after steal: core0=%d core1=%d", s.Depth(0), s.Depth(1))
	}
	// Stealing disabled: an idle core stays idle.
	s2 := New(Policy{}, cores(0, 1))
	s2.Add(1, 0) // lands on core 0
	if _, ok := s2.Next(1); ok {
		t.Fatal("core 1 must not steal with Policy.Steal unset")
	}
}

// PurgeDomain removes every queued vCPU running — or unwinding into —
// the dead domain.
func TestPurgeDomain(t *testing.T) {
	s := New(Policy{}, cores(0))
	s.Add(9, 0) // becomes the frame holder below
	s.Add(8, 0) // the survivor
	s.Add(7, 0) // runs the doomed domain directly
	v, _ := s.Next(0) // pops domain 9
	// Simulate a mediated call chain: domain 9 called into 7 and was
	// preempted with 7's frame on its stack.
	v.Frames = []uint64{7}
	s.Requeue(v, 10, false)
	if n := s.PurgeDomain(7); n != 2 {
		t.Fatalf("purge removed %d vCPUs, want 2 (the direct one and the frame holder)", n)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d after purge, want 1", s.Pending())
	}
	if got, ok := s.Next(0); !ok || got.Domain != 8 {
		t.Fatalf("survivor should be domain 8, got %+v ok=%v", got, ok)
	}
	if c := s.Counters(); c.Purged != 2 {
		t.Fatalf("Counters().Purged = %d, want 2", c.Purged)
	}
}

// Weighted round-robin: the quantum scales with the domain weight.
func TestWeightedQuantum(t *testing.T) {
	s := New(Policy{Quantum: 100, Weights: map[uint64]int{7: 3}}, cores(0))
	if q := s.Quantum(&VCPU{Domain: 7}); q != 300 {
		t.Fatalf("weighted quantum = %d, want 300", q)
	}
	if q := s.Quantum(&VCPU{Domain: 8}); q != 100 {
		t.Fatalf("default-weight quantum = %d, want 100", q)
	}
	if q := New(Policy{}, cores(0)).Quantum(&VCPU{Domain: 1}); q != DefaultQuantum {
		t.Fatalf("zero-policy quantum = %d, want %d", q, DefaultQuantum)
	}
}

// The schedule hash is stable across identical runs and sensitive to
// any dispatch-level divergence.
func TestScheduleHash(t *testing.T) {
	run := func(cycle uint64) *Scheduler {
		s := New(Policy{Steal: true}, cores(0, 1))
		for d := uint64(1); d <= 4; d++ {
			s.Add(d, 0)
		}
		now := cycle
		for {
			idle := true
			for _, c := range s.Cores() {
				if v, ok := s.Next(c); ok {
					idle = false
					s.Dispatched(v, c, now)
					now += 100
				}
			}
			if idle {
				break
			}
		}
		return s
	}
	a, b := run(0), run(0)
	if a.Hash() != b.Hash() {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a.Hash(), b.Hash())
	}
	if len(a.Records()) != 4 {
		t.Fatalf("expected 4 dispatch records, got %d", len(a.Records()))
	}
	if c := run(5); a.Hash() == c.Hash() {
		t.Fatal("cycle-shifted run must change the schedule hash")
	}
}

// Counters and latency sampling through a dispatch/requeue cycle.
func TestCountersAndLatency(t *testing.T) {
	s := New(Policy{}, cores(0))
	s.Add(1, 100)
	v, _ := s.Next(0)
	s.Dispatched(v, 0, 150)
	s.Requeue(v, 160, true) // yield
	v2, _ := s.Next(0)
	s.Dispatched(v2, 0, 200)
	s.Requeue(v2, 210, false) // preemption
	c := s.Counters()
	if c.Dispatches != 2 || c.Yields != 1 || c.Preemptions != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.MaxQueueDepth != 1 {
		t.Fatalf("MaxQueueDepth = %d, want 1", c.MaxQueueDepth)
	}
	lats := s.Latencies()
	if len(lats) != 2 || lats[0] != 50 || lats[1] != 40 {
		t.Fatalf("latency samples = %v, want [50 40]", lats)
	}
	if p := s.LatencyP99(); p != 50 {
		t.Fatalf("p99 = %d, want 50", p)
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		samples []uint64
		p       int
		want    uint64
	}{
		{nil, 99, 0},
		{[]uint64{5}, 99, 5},
		{[]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50, 5},
		{[]uint64{10, 1, 7, 3}, 99, 10},
		{[]uint64{2, 4}, 100, 4},
	}
	for _, tc := range cases {
		if got := Percentile(tc.samples, tc.p); got != tc.want {
			t.Errorf("Percentile(%v, %d) = %d, want %d", tc.samples, tc.p, got, tc.want)
		}
	}
}
