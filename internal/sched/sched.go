// Package sched is the monitor's preemptive multi-tenant scheduler:
// it time-multiplexes N trust domains over M simulated cores (N ≫ M)
// with per-core run queues of runnable vCPU contexts, weighted
// round-robin quantum budgets, cooperative yield, and work stealing
// between idle cores.
//
// The package owns only the queueing *policy*; the mechanism (arming
// the hw preemption timer, performing the monitor-mediated dispatch
// transition, saving and restoring architectural state) lives in
// internal/core's scheduling engine, which drives a Scheduler from
// sequential decision points. That split keeps the determinism
// contract auditable in one place: every method here is a pure
// function of the scheduler's own state plus its explicit arguments
// (seed, arrival order, cycle counts) — no wall clock, no global
// randomness, no map iteration in any decision path — so an identical
// sequence of calls replays an identical schedule, bit for bit, on
// any host and under the race detector.
//
// Locking: a Scheduler carries one mutex and is a leaf in the
// monitor's documented lock hierarchy (below the monitor lock and
// coreSched.mu; see docs/ARCHITECTURE.md §9). No method calls out of
// the package while holding it.
package sched

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// DefaultQuantum is the per-dispatch instruction budget when the
// policy does not set one.
const DefaultQuantum = 256

// Policy configures the scheduler. The zero value (plus one Schedule
// call) is a usable round-robin policy.
type Policy struct {
	// Quantum is the base time slice in retired instructions
	// (DefaultQuantum when 0). A domain's slice is Quantum times its
	// weight.
	Quantum int
	// Seed offsets the initial round-robin placement cursor, so
	// distinct seeds produce distinct (but each fully deterministic)
	// schedules from the same arrival order.
	Seed int64
	// Steal lets an idle core pull queued vCPUs from the deepest
	// queue of its siblings.
	Steal bool
	// Weights maps a domain ID to its round-robin weight (default 1):
	// weight w receives a w-times-longer quantum per dispatch.
	Weights map[uint64]int
}

func (p Policy) quantum() int {
	if p.Quantum <= 0 {
		return DefaultQuantum
	}
	return p.Quantum
}

// VCPU is one runnable virtual CPU of a scheduled domain. The vCPU
// carries its own saved architectural state between dispatches, so
// two vCPUs of the same domain never collide in the backend's
// per-(domain, core) context and a stolen vCPU needs no context
// migration — the engine restores the register file on whichever
// core dispatches it next.
type VCPU struct {
	// Domain is the domain this vCPU was scheduled for.
	Domain uint64
	// Running is the domain currently executing on the vCPU — it
	// differs from Domain while a mediated call chain is in flight.
	Running uint64
	// Frames is the saved mediated-call stack (caller domain IDs).
	Frames []uint64

	// Saved architectural state (valid once Started).
	Regs [hw.NumRegs]uint64
	PC   phys.Addr
	Ring hw.Ring

	// Home is the core whose queue currently holds the vCPU.
	Home phys.CoreID
	// Started reports whether the vCPU has been dispatched at least
	// once (first dispatch is a Launch at the domain's entry point;
	// later ones restore the saved state).
	Started bool
	// Stolen marks a vCPU whose last dequeue crossed cores.
	Stolen bool

	seq      uint64 // arrival order (1-based)
	enqueued uint64 // cycle stamp of the last enqueue
}

// Record is one dispatch decision, the unit of the determinism
// contract: the full schedule of a run is its Record sequence, and
// Hash folds it into one comparable value.
type Record struct {
	Seq    uint64 // 1-based dispatch number
	Core   phys.CoreID
	Domain uint64 // the vCPU's Running domain at dispatch
	VCPU   uint64 // the vCPU's arrival number
	Steal  bool
	Cycle  uint64 // aggregate cycle clock at the decision point
}

// Counters are the scheduler's own event tallies (the monitor mirrors
// them into Stats()).
type Counters struct {
	Dispatches    uint64
	Preemptions   uint64 // requeues caused by the preemption timer
	Yields        uint64 // requeues caused by CallYield
	Steals        uint64 // dispatches that crossed cores
	Purged        uint64 // queued vCPUs removed because their domain died
	MaxQueueDepth uint64 // deepest any single run queue ever got
	BarrierDrains uint64 // round barriers that drained submission rings
	DrainedOps    uint64 // ring descriptors executed at those barriers

	ParallelDrains  uint64 // barrier drains that ran as partitioned parallel rounds
	MaxDrainWorkers uint64 // widest fan-out any parallel round was configured with
}

// Scheduler is the shared run-queue state. Safe for concurrent use;
// in the monitor it is driven only from sequential decision points,
// which is what makes the schedule replayable.
type Scheduler struct {
	mu     sync.Mutex
	pol    Policy
	cores  []phys.CoreID
	queues map[phys.CoreID][]*VCPU

	place    int // rotating placement cursor (seeded)
	arrivals uint64
	ctr      Counters
	recs     []Record
	lats     []uint64 // per-dispatch queue latency samples, in cycles
}

// New returns a scheduler over the given cores (deduplicated, sorted
// ascending — decision order never depends on caller order). The
// policy seed positions the initial placement cursor.
func New(pol Policy, cores []phys.CoreID) *Scheduler {
	set := map[phys.CoreID]bool{}
	var cs []phys.CoreID
	for _, c := range cores {
		if !set[c] {
			set[c] = true
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	s := &Scheduler{
		pol:    pol,
		cores:  cs,
		queues: make(map[phys.CoreID][]*VCPU, len(cs)),
	}
	if n := len(cs); n > 0 {
		seed := pol.Seed % int64(n)
		if seed < 0 {
			seed += int64(n)
		}
		s.place = int(seed)
	}
	return s
}

// Cores returns the scheduled cores in decision (ascending) order.
func (s *Scheduler) Cores() []phys.CoreID {
	return append([]phys.CoreID(nil), s.cores...)
}

// Add enqueues a fresh vCPU for the domain, placed round-robin from
// the seeded cursor; now is the current cycle count. Arrival order is
// call order. Returns the vCPU's arrival number.
func (s *Scheduler) Add(domain uint64, now uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	home := s.cores[s.place%len(s.cores)]
	s.place++
	s.arrivals++
	v := &VCPU{
		Domain:   domain,
		Running:  domain,
		Home:     home,
		seq:      s.arrivals,
		enqueued: now,
	}
	s.push(home, v)
	return v.seq
}

// AddResumed enqueues a vCPU restored from a snapshot (live
// migration): the saved architectural state arrives with the vCPU, so
// its next dispatch is a TransDispatch resume, not an entry-point
// launch. Placement follows the same seeded round-robin cursor as Add
// and the arrival joins the same order — a restored vCPU is a new
// arrival on this scheduler, part of this run's determinism contract
// like any other. Returns the vCPU's arrival number.
func (s *Scheduler) AddResumed(domain uint64, regs [hw.NumRegs]uint64, pc phys.Addr, ring hw.Ring, now uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	home := s.cores[s.place%len(s.cores)]
	s.place++
	s.arrivals++
	v := &VCPU{
		Domain:   domain,
		Running:  domain,
		Regs:     regs,
		PC:       pc,
		Ring:     ring,
		Home:     home,
		Started:  true,
		seq:      s.arrivals,
		enqueued: now,
	}
	s.push(home, v)
	return v.seq
}

// DomainVCPUs returns snapshot copies of every *queued* vCPU whose
// Running domain is the given domain — the migration path's view of
// the domain's runnable contexts. Copies, not aliases: the caller
// serialises against dispatch (all cores quiescent) before trusting
// the saved state, and the scheduler's own records never escape.
func (s *Scheduler) DomainVCPUs(domain uint64) []VCPU {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []VCPU
	for _, c := range s.cores {
		for _, v := range s.queues[c] {
			if v.Running != domain && v.Domain != domain {
				continue
			}
			cp := *v
			cp.Frames = append([]uint64(nil), v.Frames...)
			out = append(out, cp)
		}
	}
	return out
}

// push appends v to core's queue and maintains the depth high-water
// mark. Caller holds s.mu.
func (s *Scheduler) push(core phys.CoreID, v *VCPU) {
	v.Home = core
	s.queues[core] = append(s.queues[core], v)
	if d := uint64(len(s.queues[core])); d > s.ctr.MaxQueueDepth {
		s.ctr.MaxQueueDepth = d
	}
}

// Next pops the head of core's run queue. With an empty queue and
// stealing enabled it takes the *tail* of the deepest sibling queue
// (ties break toward the lowest core ID), re-homing the vCPU — the
// deterministic work-stealing rule. Next only dequeues; the engine
// confirms the dispatch with Dispatched once the transition lands, so
// a vCPU dropped at dispatch (its domain died) never enters the
// schedule record.
func (s *Scheduler) Next(core phys.CoreID) (*VCPU, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[core]; len(q) > 0 {
		v := q[0]
		s.queues[core] = q[1:]
		v.Stolen = false
		return v, true
	}
	if !s.pol.Steal {
		return nil, false
	}
	var victim phys.CoreID
	depth := 0
	for _, c := range s.cores { // ascending: ties pick the lowest ID
		if c == core {
			continue
		}
		if d := len(s.queues[c]); d > depth {
			depth = d
			victim = c
		}
	}
	if depth == 0 {
		return nil, false
	}
	q := s.queues[victim]
	v := q[len(q)-1]
	s.queues[victim] = q[:len(q)-1]
	v.Home = core
	v.Stolen = true
	return v, true
}

// Dispatched commits a dequeue as a dispatch: records it, samples the
// queue latency, and tallies the counters. now is the cycle count at
// the decision point.
func (s *Scheduler) Dispatched(v *VCPU, core phys.CoreID, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctr.Dispatches++
	if v.Stolen {
		s.ctr.Steals++
	}
	if now >= v.enqueued {
		s.lats = append(s.lats, now-v.enqueued)
	}
	s.recs = append(s.recs, Record{
		Seq:    s.ctr.Dispatches,
		Core:   core,
		Domain: v.Running,
		VCPU:   v.seq,
		Steal:  v.Stolen,
		Cycle:  now,
	})
}

// Requeue returns a preempted (yielded = false) or yielding
// (yielded = true) vCPU to the back of its home queue.
func (s *Scheduler) Requeue(v *VCPU, now uint64, yielded bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if yielded {
		s.ctr.Yields++
	} else {
		s.ctr.Preemptions++
	}
	v.enqueued = now
	s.push(v.Home, v)
}

// PurgeDomain removes every queued vCPU whose Running domain (or any
// saved call frame) is the dead domain, returning how many were
// purged. The monitor's destruction path calls this under the
// exclusive monitor lock, so a killed domain can never be dispatched
// again — the trace oracle's dead-domain-silence property checks
// exactly that.
func (s *Scheduler) PurgeDomain(domain uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	purged := 0
	for _, c := range s.cores {
		q := s.queues[c]
		kept := q[:0]
		for _, v := range q {
			if v.references(domain) {
				purged++
				continue
			}
			kept = append(kept, v)
		}
		s.queues[c] = kept
	}
	s.ctr.Purged += uint64(purged)
	return purged
}

// references reports whether the vCPU would run or unwind into the
// domain.
func (v *VCPU) references(domain uint64) bool {
	if v.Domain == domain || v.Running == domain {
		return true
	}
	for _, f := range v.Frames {
		if f == domain {
			return true
		}
	}
	return false
}

// Quantum returns the vCPU's time slice in instructions: the policy
// quantum scaled by the domain's weight.
func (s *Scheduler) Quantum(v *VCPU) int {
	w := s.pol.Weights[v.Domain]
	if w <= 0 {
		w = 1
	}
	return s.pol.quantum() * w
}

// Pending returns the number of queued (runnable, undispatched)
// vCPUs.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.cores {
		n += len(s.queues[c])
	}
	return n
}

// Depth returns core's current queue depth.
func (s *Scheduler) Depth(core phys.CoreID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[core])
}

// Counters returns the event tallies so far.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctr
}

// RecordBarrierDrain tallies one round-barrier ring drain that executed
// ops submission descriptors. The monitor's scheduling engine calls it
// from the barrier phase, where all cores are quiescent — the drain is
// part of the deterministic schedule, so its tally lives here with the
// other schedule-shaped counters.
func (s *Scheduler) RecordBarrierDrain(ops uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctr.BarrierDrains++
	s.ctr.DrainedOps += ops
}

// RecordParallelDrain tallies barrier drains that ran as partitioned
// parallel rounds (the monitor's opt-in reclamation pipeline) and the
// widest worker fan-out the rounds used — schedule-shaped accounting
// like RecordBarrierDrain, so experiments can attribute barrier time
// to serial versus parallel drain work.
func (s *Scheduler) RecordParallelDrain(rounds, workers uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctr.ParallelDrains += rounds
	if workers > s.ctr.MaxDrainWorkers {
		s.ctr.MaxDrainWorkers = workers
	}
}

// Records returns the dispatch schedule so far.
func (s *Scheduler) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Hash folds the dispatch schedule into one FNV-1a value — two runs
// scheduled identically (same seed, arrival order, cycle counts)
// produce equal hashes; any divergence in core assignment, order,
// stealing, or timing changes it.
func (s *Scheduler) Hash() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	var buf [8 * 5]byte
	for _, r := range s.recs {
		binary.LittleEndian.PutUint64(buf[0:], r.Seq)
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Core))
		binary.LittleEndian.PutUint64(buf[16:], r.Domain)
		binary.LittleEndian.PutUint64(buf[24:], r.VCPU)
		c := r.Cycle << 1
		if r.Steal {
			c |= 1
		}
		binary.LittleEndian.PutUint64(buf[32:], c)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Latencies returns the per-dispatch queue latency samples (cycles
// between enqueue and the dispatch decision).
func (s *Scheduler) Latencies() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.lats...)
}

// LatencyP99 returns the 99th-percentile transition-to-dispatch
// latency in cycles (0 with no samples).
func (s *Scheduler) LatencyP99() uint64 {
	return Percentile(s.Latencies(), 99)
}

// Percentile returns the p-th percentile (nearest-rank) of samples.
func Percentile(samples []uint64, p int) uint64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
