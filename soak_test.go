package tyche_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	tyche "github.com/tyche-sim/tyche"
)

// TestSoakMixedWorkload interleaves everything the system offers — OS
// processes, enclave create/invoke/kill, channels, attestation, and the
// refcount audit — under one monitor for many rounds. It exists to
// catch cross-feature interactions no focused test provokes; the
// invariants checked each round are the same ones the judiciary relies
// on.
func TestSoakMixedWorkload(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	// The nightly workflow raises the budget far beyond what a per-push
	// CI run can afford (see .github/workflows/nightly.yml).
	if v := os.Getenv("SOAK_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("invalid SOAK_ROUNDS=%q", v)
		}
		rounds = n
	}
	rng := rand.New(rand.NewSource(2026))
	p, err := tyche.NewPlatform(tyche.Options{MemBytes: 64 << 20, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	os, err := tyche.NewOSWithClient(p.Monitor, p.Dom0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.VerifySession([]byte("soak"))
	if err != nil {
		t.Fatal(err)
	}

	var enclaves []*tyche.Domain
	for round := 0; round < rounds; round++ {
		switch rng.Intn(5) {
		case 0: // spawn and run an OS process
			pid, err := os.Spawn("p", func(base tyche.Addr) []byte {
				a := tyche.NewAsm()
				a.Movi(0, 2).Movi(1, uint32(round)).Syscall()
				a.Movi(0, 1).Movi(1, 0).Syscall()
				return a.MustAssemble(base)
			}, 1, 1)
			if err != nil {
				t.Fatalf("round %d spawn: %v", round, err)
			}
			if err := os.RunAll(0, 1000, 4); err != nil {
				t.Fatalf("round %d run: %v", round, err)
			}
			if err := os.Reap(pid); err != nil {
				t.Fatalf("round %d reap: %v", round, err)
			}
		case 1: // create an enclave
			opts := tyche.DefaultLoadOptions()
			opts.Cores = []tyche.CoreID{1}
			dom, err := p.Dom0.NewEnclave(addTwoImage("soak"), opts)
			if err != nil {
				t.Fatalf("round %d enclave: %v", round, err)
			}
			enclaves = append(enclaves, dom)
		case 2: // invoke a random enclave
			if len(enclaves) == 0 {
				continue
			}
			dom := enclaves[rng.Intn(len(enclaves))]
			if err := p.HostDom0(1); err != nil {
				t.Fatalf("round %d host: %v", round, err)
			}
			got, err := dom.Invoke(1, 10_000, uint64(round))
			if err != nil {
				t.Fatalf("round %d invoke: %v", round, err)
			}
			if got != uint64(round)+2 {
				t.Fatalf("round %d: got %d", round, got)
			}
		case 3: // kill a random enclave
			if len(enclaves) == 0 {
				continue
			}
			i := rng.Intn(len(enclaves))
			if err := enclaves[i].Kill(); err != nil {
				t.Fatalf("round %d kill: %v", round, err)
			}
			enclaves = append(enclaves[:i], enclaves[i+1:]...)
		case 4: // channel to an unsealed service
			opts := tyche.DefaultLoadOptions()
			opts.Cores = []tyche.CoreID{1}
			opts.Seal = false
			dom, err := p.Dom0.Load(addTwoImage("chan"), opts)
			if err != nil {
				t.Fatalf("round %d load: %v", round, err)
			}
			ch, err := p.Dom0.OpenChannel(dom.ID(), 1, tyche.CleanZero)
			if err != nil {
				t.Fatalf("round %d channel: %v", round, err)
			}
			if err := ch.Write(0, []byte{byte(round)}); err != nil {
				t.Fatal(err)
			}
			if got, err := ch.ReadAs(dom.ID(), 0, 1); err != nil || got[0] != byte(round) {
				t.Fatalf("round %d channel read: %v %v", round, got, err)
			}
			if err := ch.Close(); err != nil {
				t.Fatal(err)
			}
			if err := dom.Kill(); err != nil {
				t.Fatal(err)
			}
		}

		// Round invariants.
		for _, rc := range p.Monitor.RefCounts() {
			if rc.Count != len(rc.Owners) {
				t.Fatalf("round %d: refcount %d != owners %v", round, rc.Count, rc.Owners)
			}
			if rc.Count > 2 {
				t.Fatalf("round %d: unexpected refcount %d at %v", round, rc.Count, rc.Region)
			}
		}
		for _, dom := range enclaves {
			text, _ := dom.SegmentRegion(".text")
			if p.Monitor.CheckAccess(tyche.InitialDomain, text.Start, tyche.RightRead) {
				t.Fatalf("round %d: dom0 can read enclave %d", round, dom.ID())
			}
			rep, err := dom.Attest([]byte("soak"))
			if err != nil {
				t.Fatalf("round %d attest: %v", round, err)
			}
			if err := sess.VerifyDomain(rep, []byte("soak")); err != nil {
				t.Fatalf("round %d verify: %v", round, err)
			}
		}
	}
	// Everything tears down.
	for _, dom := range enclaves {
		if err := dom.Kill(); err != nil {
			t.Fatal(err)
		}
	}
}
