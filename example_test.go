package tyche_test

import (
	"fmt"

	tyche "github.com/tyche-sim/tyche"
)

// ExampleNewPlatform boots a machine under the isolation monitor, runs
// a sealed enclave, and verifies its attestation chain — the minimal
// end-to-end loop.
func ExampleNewPlatform() {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		panic(err)
	}

	// An enclave service: return its argument (r2) plus two.
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // monitor call: return
	a.Vmcall()
	a.Hlt()
	img := tyche.NewProgram("adder", a.MustAssemble(0))

	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		panic(err)
	}
	got, err := enclave.Invoke(0, 10_000, 40)
	if err != nil {
		panic(err)
	}
	fmt.Println("enclave result:", got)

	// Judiciary: the full chain, then the exclusivity policy.
	sess, err := p.VerifySession([]byte("boot"))
	if err != nil {
		panic(err)
	}
	report, err := enclave.Attest([]byte("nonce"))
	if err != nil {
		panic(err)
	}
	if err := sess.VerifyDomain(report, []byte("nonce")); err != nil {
		panic(err)
	}
	fmt.Println("exclusive memory:", tyche.RequireExclusiveMemory(report) == nil)
	// Output:
	// enclave result: 42
	// exclusive memory: true
}

// ExampleClient_OpenChannel shows attested shared memory between two
// domains: the reference count proves exactly who can reach it.
func ExampleClient_OpenChannel() {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		panic(err)
	}
	a := tyche.NewAsm()
	a.Hlt()
	img := tyche.NewProgram("peer", a.MustAssemble(0))
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Seal = false
	peer, err := p.Dom0.Load(img, opts)
	if err != nil {
		panic(err)
	}
	ch, err := p.Dom0.OpenChannel(peer.ID(), 1, tyche.CleanZero)
	if err != nil {
		panic(err)
	}
	if err := ch.Write(0, []byte("hello")); err != nil {
		panic(err)
	}
	msg, err := ch.ReadAs(peer.ID(), 0, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("peer read %q, refcount %d\n", msg, ch.RefCount())
	// Output:
	// peer read "hello", refcount 2
}

// ExampleDomain_Client demonstrates nesting: a sealed enclave spawns a
// nested enclave from memory it exclusively owns.
func ExampleDomain_Client() {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		panic(err)
	}
	prog := tyche.NewAsm()
	prog.Hlt()
	outerImg := tyche.NewProgram("outer", prog.MustAssemble(0)).
		WithHeap(".heap", 32*tyche.PageSize)
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Seal = false
	outer, err := p.Dom0.Load(outerImg, opts)
	if err != nil {
		panic(err)
	}
	if _, err := outer.Seal(); err != nil {
		panic(err)
	}
	// The sealed enclave acts for itself.
	oc := outer.Client()
	heapNode, _ := outer.SegmentNode(".heap")
	heapRegion, _ := outer.SegmentRegion(".heap")
	if err := oc.SetHeap(heapNode, heapRegion); err != nil {
		panic(err)
	}
	innerImg := tyche.NewProgram("inner", prog.MustAssemble(0))
	innerOpts := tyche.DefaultLoadOptions()
	innerOpts.Cores = []tyche.CoreID{1}
	inner, err := oc.NewEnclave(innerImg, innerOpts)
	if err != nil {
		panic(err)
	}
	text, _ := inner.SegmentRegion(".text")
	fmt.Println("dom0 can read nested enclave:",
		p.Monitor.CheckAccess(tyche.InitialDomain, text.Start, tyche.RightRead))
	fmt.Println("outer can read nested enclave:",
		p.Monitor.CheckAccess(outer.ID(), text.Start, tyche.RightRead))
	// Output:
	// dom0 can read nested enclave: false
	// outer can read nested enclave: false
}
