package tyche_test

import (
	"io"
	"testing"

	tyche "github.com/tyche-sim/tyche"
	"github.com/tyche-sim/tyche/internal/baseline"
	"github.com/tyche-sim/tyche/internal/bench"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Every figure/claim experiment is exposed as a benchmark: one
// iteration regenerates the experiment's full table and re-evaluates
// its shape checks (see EXPERIMENTS.md). Run a single one with e.g.
//
//	go test -bench=BenchmarkExperimentF2 -benchmem
func runExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(bench.Config{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if failed := res.Failed(); len(failed) != 0 {
			b.Fatalf("%s shape checks failed: %+v", id, failed)
		}
		res.Render(io.Discard)
	}
}

func BenchmarkExperimentF1(b *testing.B)  { runExperiment(b, "F1") }
func BenchmarkExperimentF2(b *testing.B)  { runExperiment(b, "F2") }
func BenchmarkExperimentF3(b *testing.B)  { runExperiment(b, "F3") }
func BenchmarkExperimentF4(b *testing.B)  { runExperiment(b, "F4") }
func BenchmarkExperimentC1(b *testing.B)  { runExperiment(b, "C1") }
func BenchmarkExperimentC2(b *testing.B)  { runExperiment(b, "C2") }
func BenchmarkExperimentC3(b *testing.B)  { runExperiment(b, "C3") }
func BenchmarkExperimentC4(b *testing.B)  { runExperiment(b, "C4") }
func BenchmarkExperimentC5(b *testing.B)  { runExperiment(b, "C5") }
func BenchmarkExperimentC6(b *testing.B)  { runExperiment(b, "C6") }
func BenchmarkExperimentC7(b *testing.B)  { runExperiment(b, "C7") }
func BenchmarkExperimentC8(b *testing.B)  { runExperiment(b, "C8") }
func BenchmarkExperimentC9(b *testing.B)  { runExperiment(b, "C9") }
func BenchmarkExperimentC10(b *testing.B) { runExperiment(b, "C10") }
func BenchmarkExperimentC11(b *testing.B) { runExperiment(b, "C11") }
func BenchmarkExperimentC12(b *testing.B) { runExperiment(b, "C12") }

// --- Micro-benchmarks for the headline mechanisms. Each reports the
// simulated hardware cost in cycles/op alongside Go wall time.

func serviceImage() *tyche.Image {
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // CallReturn
	a.Vmcall()
	a.Hlt()
	return tyche.NewProgram("svc", a.MustAssemble(0))
}

// BenchmarkFastSwitch measures the VMFUNC-style fast domain transition
// (C2's headline row; paper: ~100 cycles).
func BenchmarkFastSwitch(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	opts.FastPathCore = 0
	dom, err := p.Dom0.Load(serviceImage(), opts)
	if err != nil {
		b.Fatal(err)
	}
	start := p.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Monitor.FastSwitch(0, dom.ID()); err != nil {
			b.Fatal(err)
		}
		if err := p.Monitor.FastSwitch(0, tyche.InitialDomain); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Cycles()-start)/float64(2*b.N), "cycles/switch")
}

// BenchmarkMediatedCall measures a full monitor-mediated call+return
// into an enclave (two VM exit/entry pairs plus the service body).
func BenchmarkMediatedCall(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	dom, err := p.Dom0.NewEnclave(serviceImage(), opts)
	if err != nil {
		b.Fatal(err)
	}
	start := p.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dom.Invoke(0, 10000, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Cycles()-start)/float64(b.N), "cycles/call")
}

// BenchmarkMediatedCallPMP is the same round trip on the PMP backend
// (per-transition register-file reprogramming).
func BenchmarkMediatedCallPMP(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{Backend: tyche.BackendPMP})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	dom, err := p.Dom0.NewEnclave(serviceImage(), opts)
	if err != nil {
		b.Fatal(err)
	}
	start := p.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dom.Invoke(0, 10000, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Cycles()-start)/float64(b.N), "cycles/call")
}

// BenchmarkSGXRoundTrip is the baseline enclave world switch.
func BenchmarkSGXRoundTrip(b *testing.B) {
	m, err := hw.NewMachine(hw.Config{MemBytes: 8 << 20, NumCores: 1, IOMMUAllowByDefault: true})
	if err != nil {
		b.Fatal(err)
	}
	sgx := baseline.NewSGX(m, 0)
	proc, err := sgx.NewProcess(phys.MakeRegion(1<<20, 64*phys.PageSize))
	if err != nil {
		b.Fatal(err)
	}
	e, err := proc.CreateEnclave(phys.MakeRegion(1<<20, 4*phys.PageSize), 1<<20, false)
	if err != nil {
		b.Fatal(err)
	}
	start := m.Clock.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EEnter(m.Cores[0])
		e.EExit(m.Cores[0])
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Clock.Cycles()-start)/float64(b.N), "cycles/roundtrip")
}

// BenchmarkShareRevoke measures one capability share+revoke through the
// monitor (C3's single-op row), including hardware resync.
func BenchmarkShareRevoke(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Seal = false
	dom, err := p.Dom0.Load(serviceImage(), opts)
	if err != nil {
		b.Fatal(err)
	}
	region, err := p.Dom0.Alloc(1)
	if err != nil {
		b.Fatal(err)
	}
	var heapNode cap.NodeID
	for _, n := range p.Monitor.OwnerNodes(tyche.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory && n.Resource.Mem.ContainsRegion(region) {
			heapNode = n.ID
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := p.Monitor.Share(tyche.InitialDomain, heapNode, dom.ID(),
			cap.MemResource(region), tyche.MemRW, tyche.CleanZero)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Monitor.Revoke(tyche.InitialDomain, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnclaveCreateDestroy measures the full enclave lifecycle:
// load, grant, measure, seal, kill (with obliterating cleanup).
func BenchmarkEnclaveCreateDestroy(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img := serviceImage()
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dom, err := p.Dom0.NewEnclave(img, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := dom.Kill(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttest measures report generation + verification (C7).
func BenchmarkAttest(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	dom, err := p.Dom0.NewEnclave(serviceImage(), opts)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := p.VerifySession([]byte("b"))
	if err != nil {
		b.Fatal(err)
	}
	nonce := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := dom.Attest(nonce)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.VerifyDomain(rep, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefCounts measures the Figure-4 reference-count sweep over a
// populated capability space.
func BenchmarkRefCounts(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Seal = false
	for i := 0; i < 8; i++ {
		if _, err := p.Dom0.Load(serviceImage(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rcs := p.Monitor.RefCounts(); len(rcs) == 0 {
			b.Fatal("empty refcount map")
		}
	}
}

// BenchmarkGuestExecution measures raw interpreted execution throughput
// (instructions retired per second) under full enforcement.
func BenchmarkGuestExecution(b *testing.B) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// A counting loop: 4 instructions per iteration, 1000 iterations.
	a := tyche.NewAsm()
	a.Movi(1, 0)
	a.Movi(2, 1000)
	a.Label("loop")
	a.Addi(1, 1, 1)
	a.Jlt(1, 2, "loop")
	a.Hlt()
	entry := tyche.Addr(8 * tyche.PageSize)
	code := a.MustAssemble(entry)
	if err := p.Monitor.CopyInto(tyche.InitialDomain, entry, code); err != nil {
		b.Fatal(err)
	}
	cpu := p.Machine.Core(0)
	var retired uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.PC = entry
		cpu.ClearHalt()
		res, err := p.Monitor.RunCore(0, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		retired += uint64(res.Steps)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instr/s")
	}
}

func BenchmarkExperimentC13(b *testing.B) { runExperiment(b, "C13") }
func BenchmarkExperimentC14(b *testing.B) { runExperiment(b, "C14") }
