// Attested cross-machine channels: two enclaves on two independently
// booted machines (separate TPMs, separate monitors) establish a
// mutually attested, integrity-protected channel over an untrusted wire
// — the paper's "RDMA support for Tyche-based TEEs running on separate
// machines" with "all communication paths secured and attested" (§4.2).
package main

import (
	"fmt"
	"log"

	tyche "github.com/tyche-sim/tyche"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// node is one machine with an RDMA endpoint enclave on it.
type node struct {
	p   *tyche.Platform
	dom *tyche.Domain
	img *tyche.Image
}

func bootNode(name string) (*node, error) {
	p, err := tyche.NewPlatform(tyche.Options{
		Devices: []tyche.DeviceSpec{{Name: "rnic0", Class: "nic"}},
	})
	if err != nil {
		return nil, err
	}
	// The endpoint enclave: code + a registered buffer + its own NIC
	// (RDMA-style: the application owns the queue pair, the host OS is
	// off the data path).
	img := tyche.NewProgram(name, tyche.NewAsm().Hlt().MustAssemble(0))
	img.Segments = append(img.Segments, tyche.Segment{
		Name: ".rdma", Size: 2 * tyche.PageSize, Rights: tyche.MemRW,
		Confidential: true,
	})
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Devices = []tyche.DeviceID{0}
	dom, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		return nil, err
	}
	return &node{p: p, dom: dom, img: img}, nil
}

func (n *node) endpoint(peer *node) (*tyche.RemoteEndpoint, error) {
	buf, ok := n.dom.SegmentRegion(".rdma")
	if !ok {
		return nil, fmt.Errorf("no registered buffer")
	}
	// Pin the peer's exact enclave identity, computed offline from its
	// image (what tyche-hash gives a relying party).
	peerMeas, err := peer.img.Measurement(peer.dom.Base())
	if err != nil {
		return nil, err
	}
	return &tyche.RemoteEndpoint{
		Monitor:         n.p.Monitor,
		TPM:             n.p.TPM,
		Domain:          n.dom.ID(),
		Buffer:          buf,
		NIC:             0,
		PeerVerifier:    tyche.NewVerifier(peer.p.TPM.EndorsementKey(), peer.p.Monitor.Identity()),
		PeerMeasurement: &peerMeas,
	}, nil
}

func run() error {
	alice, err := bootNode("alice-endpoint")
	if err != nil {
		return err
	}
	bob, err := bootNode("bob-endpoint")
	if err != nil {
		return err
	}
	fmt.Println("machine A:", alice.p)
	fmt.Println("machine B:", bob.p)

	wire := &tyche.RemoteWire{}
	epA, err := alice.endpoint(bob)
	if err != nil {
		return err
	}
	epB, err := bob.endpoint(alice)
	if err != nil {
		return err
	}
	conn, err := tyche.ConnectRemote(epA, epB, wire)
	if err != nil {
		return err
	}
	fmt.Println("mutual attestation ok: each side verified the other's TPM, monitor, and enclave measurement")

	secret := []byte("cross-machine secret: neither host OS nor the wire sees this")
	got, err := conn.Send(epA, secret)
	if err != nil {
		return err
	}
	if string(got) != string(secret) {
		return fmt.Errorf("payload corrupted")
	}
	fmt.Printf("A -> B delivered %d bytes through registered buffers and NIC DMA\n", len(got))

	if wire.WireCarried(secret) {
		return fmt.Errorf("BUG: plaintext on the wire")
	}
	fmt.Println("the adversary's wire tap saw only ciphertext")

	// Host OSes probe the registered buffers: denied on both machines.
	if _, err := alice.p.Monitor.CopyFrom(tyche.InitialDomain, epA.Buffer.Start, 8); err == nil {
		return fmt.Errorf("BUG: host A read the buffer")
	}
	if _, err := bob.p.Monitor.CopyFrom(tyche.InitialDomain, epB.Buffer.Start, 8); err == nil {
		return fmt.Errorf("BUG: host B read the buffer")
	}
	fmt.Println("both host OS probes on the registered buffers: denied")

	// An in-flight bit flip is detected.
	wire.Corrupt = func(f []byte) []byte { f[20] ^= 1; return f }
	if _, err := conn.Send(epA, []byte("integrity check")); err == nil {
		return fmt.Errorf("BUG: tampered frame accepted")
	}
	wire.Corrupt = nil
	fmt.Println("tampered frame rejected by message authentication")
	fmt.Println("attested rdma channel complete")
	return nil
}
