// Driver sandbox: the commodity OS (running as the initial domain)
// moves its NIC driver into a kernel compartment — a trust domain with
// the device granted DMA rights. The driver and its device can then
// only touch the compartment's memory: a compromised driver can no
// longer scribble over the kernel, and the NIC cannot DMA kernel or
// process memory. Meanwhile ordinary processes keep running — the OS
// keeps its own abstractions (§3.5).
package main

import (
	"fmt"
	"log"

	tyche "github.com/tyche-sim/tyche"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		return err
	}
	fmt.Println(p)

	// Boot the mini OS inside dom0 (sharing dom0's allocator).
	os, err := tyche.NewOSWithClient(p.Monitor, p.Dom0)
	if err != nil {
		return err
	}

	// Two ordinary processes.
	hello := func(tag uint32) func(base tyche.Addr) []byte {
		return func(base tyche.Addr) []byte {
			a := tyche.NewAsm()
			a.Movi(0, 2).Movi(1, tag).Syscall() // SysLog tag
			a.Movi(0, 1).Movi(1, 0).Syscall()   // SysExit 0
			return a.MustAssemble(base)
		}
	}
	p1, err := os.Spawn("web", hello(100), 1, 1)
	if err != nil {
		return err
	}
	p2, err := os.Spawn("db", hello(200), 1, 1)
	if err != nil {
		return err
	}
	if err := os.RunAll(0, 1000, 8); err != nil {
		return err
	}
	_ = p2
	printProcs(os)

	// The NIC driver compartment: code + a DMA pool, plus the NIC
	// (device 1) granted with DMA rights.
	driverImg := tyche.NewProgram("nic-driver", tyche.NewAsm().Hlt().MustAssemble(0)).
		WithBSS(".dmapool", 4*tyche.PageSize)
	driver, err := os.Client().NewKernelCompartment(driverImg, []tyche.DeviceID{1}, tyche.DefaultLoadOptions())
	if err != nil {
		return err
	}
	pool, _ := driver.SegmentRegion(".dmapool")
	fmt.Printf("nic driver compartment: domain %d, DMA pool %v, owns the NIC\n", driver.ID(), pool)

	nic := p.Machine.Device(1)
	// Legitimate driver I/O: packets DMA into the pool.
	if err := nic.DMAWrite(pool.Start, []byte("incoming-packet")); err != nil {
		return fmt.Errorf("legitimate driver DMA failed: %v", err)
	}
	fmt.Println("NIC DMA into the driver's pool: ok")

	// Attack 1: the (compromised) driver directs its NIC at kernel
	// memory.
	if err := nic.DMARead(4*tyche.PageSize, make([]byte, 64)); err == nil {
		return fmt.Errorf("BUG: NIC read kernel memory")
	}
	fmt.Println("NIC DMA against kernel memory: denied by the IOMMU")

	// Attack 2: ...or at a process's data.
	victim, err := os.Process(p1)
	if err != nil {
		return err
	}
	if err := nic.DMARead(victim.DataRegion().Start, make([]byte, 64)); err == nil {
		return fmt.Errorf("BUG: NIC read process memory")
	}
	fmt.Println("NIC DMA against process memory: denied by the IOMMU")

	// Attack 3: the kernel pokes the compartment (a buggy kernel can no
	// longer corrupt the isolated driver either — isolation cuts both
	// ways).
	if _, err := os.KernelRead(pool.Start, 8); err == nil {
		return fmt.Errorf("BUG: kernel read the compartment")
	}
	fmt.Println("kernel read of the driver compartment: denied by the monitor")

	// The GPU (device 0, still the kernel's) cannot reach the
	// compartment either.
	if err := p.Machine.Device(0).DMARead(pool.Start, make([]byte, 8)); err == nil {
		return fmt.Errorf("BUG: foreign device read the compartment")
	}
	fmt.Println("foreign device DMA against the compartment: denied")

	fmt.Println("driver sandbox complete: processes ran, driver confined, DMA attacks stopped")
	return nil
}

func printProcs(os *tyche.OS) {
	for _, pid := range os.Processes() {
		p, err := os.Process(pid)
		if err != nil {
			continue
		}
		fmt.Printf("process %d (%s): %v, logs=%v\n", p.Pid(), p.Name(), p.State(), p.Logs())
	}
}
