// The Figure-2 scenario as a runnable program: a customer processes
// sensitive data through an untrusted SaaS provider. The SaaS
// application and a crypto-engine enclave share an attested buffer, a
// GPU I/O domain carries the encrypted result out, and the provider —
// who controls the hypervisor — never sees anything but ciphertext and
// public keys. Key provisioning uses real X25519 bound to the enclave's
// attestation via report data.
package main

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	tyche "github.com/tyche-sim/tyche"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		return err
	}
	fmt.Println(p)
	mon := p.Monitor

	// --- The provider deploys the crypto engine (enclave with a
	// private key page) and the SaaS app (enclave with a buffer it will
	// share with the engine).
	//
	// Engine service: XOR the length-prefixed buffer at [r2] with the
	// 32-byte key one page above its text, in place.
	engineProgram := func(base tyche.Addr) *tyche.Asm {
		keyBase := base + tyche.PageSize
		a := tyche.NewAsm()
		a.Ld(3, 2, 0) // n
		a.Movi(4, 0)  // i
		a.Movi(5, uint32(keyBase))
		a.Label("loop")
		a.Jlt(4, 3, "body")
		a.Jmp("done")
		a.Label("body")
		a.Add(6, 2, 4)
		a.Ldb(7, 6, 8)
		a.Movi(8, 31)
		a.And(9, 4, 8)
		a.Add(10, 5, 9)
		a.Ldb(11, 10, 0)
		a.Xor(7, 7, 11)
		a.Stb(6, 8, 7)
		a.Addi(4, 4, 1)
		a.Jmp("loop")
		a.Label("done")
		a.Movi(0, 3) // return
		a.Mov(1, 3)
		a.Vmcall()
		a.Hlt()
		return a
	}
	// Assemble against the engine's final load address (deterministic
	// first-fit allocation: peek, then load).
	probe := tyche.NewProgram("crypto-engine", engineProgram(0).MustAssemble(0))
	probe.WithBSS(".key", tyche.PageSize)
	engineBase, err := p.Dom0.Heap().Peek(probe.TotalPages())
	if err != nil {
		return err
	}
	engineImg := tyche.NewProgram("crypto-engine", engineProgram(engineBase.Start).MustAssemble(engineBase.Start))
	engineImg.WithBSS(".key", tyche.PageSize)

	engineOpts := tyche.DefaultLoadOptions()
	engineOpts.Cores = []tyche.CoreID{0}
	engineOpts.Seal = false // it still receives the mailbox + channel
	engine, err := p.Dom0.Load(engineImg, engineOpts)
	if err != nil {
		return err
	}
	keySeg, _ := engine.SegmentRegion(".key")

	// Provisioning mailbox: provider-relayed, so only public data may
	// cross it.
	mailbox, err := p.Dom0.OpenChannel(engine.ID(), 1, tyche.CleanZero)
	if err != nil {
		return err
	}

	// SaaS app: its code calls the engine with the shared buffer's
	// address in r2, then halts.
	appProbe := tyche.NewProgram("saas-app", tyche.NewAsm().Hlt().MustAssemble(0))
	appProbe.WithBSS(".chan", tyche.PageSize)
	appBase, err := p.Dom0.Heap().Peek(appProbe.TotalPages())
	if err != nil {
		return err
	}
	chanBase := appBase.Start + tyche.PageSize
	appAsm := tyche.NewAsm()
	appAsm.Movi(0, 2) // monitor call: call domain
	appAsm.Movi(1, uint32(engine.ID()))
	appAsm.Movi(2, uint32(chanBase))
	appAsm.Vmcall()
	appAsm.Hlt()
	appImg := tyche.NewProgram("saas-app", appAsm.MustAssemble(appBase.Start))
	appImg.WithBSS(".chan", tyche.PageSize) // confidential: only the app, until it shares

	appOpts := tyche.DefaultLoadOptions()
	appOpts.Cores = []tyche.CoreID{0}
	appOpts.Seal = false
	app, err := p.Dom0.Load(appImg, appOpts)
	if err != nil {
		return err
	}
	chanSeg, _ := app.SegmentRegion(".chan")
	// The app shares its exclusively-owned buffer with the engine —
	// exactly two domains, which the refcount proves.
	chanNode, _ := app.SegmentNode(".chan")
	if _, err := mon.Share(app.ID(), chanNode, engine.ID(),
		tyche.MemResource(chanSeg), tyche.MemRW, tyche.CleanZero); err != nil {
		return err
	}
	if _, err := engine.Seal(); err != nil {
		return err
	}
	if _, err := app.Seal(); err != nil {
		return err
	}
	fmt.Println("deployed: crypto engine (sealed), saas app (sealed), shared buffer at refcount", channelRefs(p, chanSeg))

	// --- Engine generates its X25519 identity and binds it to its
	// attestation.
	x := ecdh.X25519()
	enginePriv, err := x.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	enginePub := enginePriv.PublicKey().Bytes()
	if err := mon.SetReportData(engine.ID(), engine.ID(), tyche.Measure(enginePub)); err != nil {
		return err
	}
	if err := mailbox.WriteAs(engine.ID(), 0, enginePub); err != nil {
		return err
	}

	// --- The customer verifies everything before sending a single
	// byte: boot quote, both reports, offline measurement, and that the
	// mailbox key is the attested one.
	sess, err := p.VerifySession([]byte("boot"))
	if err != nil {
		return err
	}
	nonce := []byte("saas")
	engRep, err := engine.Attest(nonce)
	if err != nil {
		return err
	}
	appRep, err := app.Attest(nonce)
	if err != nil {
		return err
	}
	if err := sess.VerifyDomain(engRep, nonce); err != nil {
		return err
	}
	if err := sess.VerifyDomain(appRep, nonce); err != nil {
		return err
	}
	wantEng, err := engineImg.Measurement(engine.Base())
	if err != nil {
		return err
	}
	if err := tyche.RequireMeasurement(engRep, wantEng); err != nil {
		return err
	}
	if err := tyche.RequireSealed(engRep); err != nil {
		return err
	}
	pub, err := mailbox.Read(0, 32)
	if err != nil {
		return err
	}
	if tyche.Measure(pub) != engRep.ReportData {
		return fmt.Errorf("mailbox key is NOT the attested one (MITM?)")
	}
	fmt.Println("customer verified: monitor, engine measurement, seal, attested key binding")

	// --- Key provisioning over X25519.
	customerPriv, err := x.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	if err := mailbox.WriteAs(tyche.InitialDomain, 64, customerPriv.PublicKey().Bytes()); err != nil {
		return err
	}
	peerBytes, err := mailbox.ReadAs(engine.ID(), 64, 32)
	if err != nil {
		return err
	}
	peerPub, err := x.NewPublicKey(peerBytes)
	if err != nil {
		return err
	}
	engineKey, err := enginePriv.ECDH(peerPub)
	if err != nil {
		return err
	}
	if err := mon.CopyInto(engine.ID(), keySeg.Start, engineKey); err != nil {
		return err
	}
	customerKey, err := customerPriv.ECDH(enginePriv.PublicKey())
	if err != nil {
		return err
	}
	fmt.Println("key provisioned into the engine's private page via X25519")

	// --- Data path: plaintext into the shared buffer, app calls the
	// engine, ciphertext comes back.
	plaintext := []byte("the provider relays everything and learns nothing")
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(plaintext)))
	if err := mon.CopyInto(app.ID(), chanSeg.Start, append(hdr[:], plaintext...)); err != nil {
		return err
	}
	if err := app.Launch(0); err != nil {
		return err
	}
	if _, err := mon.RunCore(0, 100_000); err != nil {
		return err
	}
	ciphertext, err := mon.CopyFrom(app.ID(), chanSeg.Start+8, uint64(len(plaintext)))
	if err != nil {
		return err
	}
	want := make([]byte, len(plaintext))
	for i := range plaintext {
		want[i] = plaintext[i] ^ customerKey[i%32]
	}
	if !bytes.Equal(ciphertext, want) {
		return fmt.Errorf("ciphertext mismatch")
	}
	fmt.Printf("engine encrypted %d bytes inside the enclave; customer decrypted them successfully\n", len(plaintext))

	// --- The compromised provider probes.
	if _, err := mon.CopyFrom(tyche.InitialDomain, keySeg.Start, 32); err == nil {
		return fmt.Errorf("BUG: provider read the key")
	}
	if _, err := mon.CopyFrom(tyche.InitialDomain, chanSeg.Start, 16); err == nil {
		return fmt.Errorf("BUG: provider read the data buffer")
	}
	fmt.Println("provider probes on the key page and data buffer: denied")
	fmt.Println("figure-2 pipeline complete")
	return fleetCoda()
}

// fleetCoda scales the scenario out: the same confidential-service
// shape deployed across a 3-node simulated datacenter under one
// control plane, served behind a load balancer, then live-migrated
// between nodes over an attested channel. A wire tap proves the
// migrating domain's state never crossed the provider's network in
// the clear: the snapshot's own field names are absent from every
// frame the wire carried.
func fleetCoda() error {
	fmt.Println("\n--- fleet: the same story across a simulated datacenter ---")
	f, err := fleet.New(fleet.Config{Nodes: 3, CoresPerNode: 3, MemBytes: 16 << 20, Spin: 25})
	if err != nil {
		return err
	}
	if err := f.Deploy(fleet.ServiceSpec{Name: "saas", Delta: 42}, 2); err != nil {
		return err
	}
	stats, err := f.Serve([]string{"saas"}, 200, 2)
	if err != nil {
		return err
	}
	fmt.Printf("deployed saas on 2 of 3 nodes (attested placements); served %d load-balanced requests\n", stats.Requests)

	pl := f.LB().Placements("saas")[0]
	to := -1
	hosts := f.LB().ReplicaNodes("saas")
	for i := range f.Nodes {
		if i != pl.Node && !hosts[i] {
			to = i
			break
		}
	}
	wire := &dist.Wire{}
	if err := f.Migrate("saas", pl.Node, to, wire); err != nil {
		return err
	}
	// The plaintext snapshot is JSON; if it had crossed unsealed, its
	// field names would be on the wire.
	if len(wire.Taps) == 0 {
		return fmt.Errorf("BUG: migration crossed no tapped frame")
	}
	if wire.WireCarried([]byte(`"Measurement"`)) {
		return fmt.Errorf("BUG: migration snapshot crossed the provider's network in the clear")
	}
	fmt.Printf("live-migrated saas node%d -> node%d: blackout %v, snapshot sealed on the wire (provider saw only ciphertext)\n",
		pl.Node, to, time.Duration(f.Blackouts()[0]))
	if _, err := f.Serve([]string{"saas"}, 200, 2); err != nil {
		return err
	}
	audits, err := f.Audit()
	if err != nil {
		return err
	}
	for _, a := range audits {
		if a.SelfErr != nil || len(a.Flags) != 0 {
			return fmt.Errorf("fleet audit flagged %s: self=%v flags=%v", a.Node, a.SelfErr, a.Flags)
		}
	}
	fmt.Printf("fleet-wide verification: %d node digest chains verified by the control plane, all clean\n", len(audits))
	return nil
}

func channelRefs(p *tyche.Platform, region tyche.Region) int {
	max := 0
	for _, rc := range p.Monitor.RefCounts() {
		if rc.Region.Overlaps(region) && rc.Count > max {
			max = rc.Count
		}
	}
	return max
}
