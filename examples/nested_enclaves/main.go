// Nested enclaves: a sealed enclave maps the domain library and spawns
// its own nested enclave from memory it exclusively owns, shares a page
// with it as a secure channel, and the whole chain tears down with one
// cascading revocation (§4.2: "our enclaves can map libtyche in their
// domains to spawn nested enclaves, and share exclusively owned pages
// with them to create secured communication channels").
package main

import (
	"fmt"
	"log"

	tyche "github.com/tyche-sim/tyche"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func service(delta uint32) *tyche.Image {
	a := tyche.NewAsm()
	a.Movi(3, delta)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // return
	a.Vmcall()
	a.Hlt()
	return tyche.NewProgram(fmt.Sprintf("svc+%d", delta), a.MustAssemble(0))
}

func run() error {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		return err
	}
	fmt.Println(p)

	// Outer enclave: a service plus a private RWX heap it will carve
	// its child from.
	outerImg := service(1).WithHeap(".heap", 64*tyche.PageSize)
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	opts.Seal = false
	outer, err := p.Dom0.Load(outerImg, opts)
	if err != nil {
		return err
	}
	if _, err := outer.Seal(); err != nil {
		return err
	}
	fmt.Printf("outer enclave %d sealed; dom0 cannot read its heap\n", outer.ID())

	// The outer enclave acts for itself now: its own libtyche client
	// over its own heap.
	oc := outer.Client()
	heapNode, _ := outer.SegmentNode(".heap")
	heapRegion, _ := outer.SegmentRegion(".heap")
	if err := oc.SetHeap(heapNode, heapRegion); err != nil {
		return err
	}
	// Load the child unsealed: the channel page still has to arrive
	// before its resource set freezes.
	innerOpts := tyche.DefaultLoadOptions()
	innerOpts.Cores = []tyche.CoreID{0}
	innerOpts.Seal = false
	inner, err := oc.Load(service(2), innerOpts)
	if err != nil {
		return err
	}
	fmt.Printf("outer spawned nested enclave %d from its own pages\n", inner.ID())

	// Depth-2 isolation: neither dom0 nor the outer enclave can read
	// the inner one.
	innerText, _ := inner.SegmentRegion(".text")
	if p.Monitor.CheckAccess(tyche.InitialDomain, innerText.Start, tyche.RightRead) {
		return fmt.Errorf("BUG: dom0 reads the nested enclave")
	}
	if p.Monitor.CheckAccess(outer.ID(), innerText.Start, tyche.RightRead) {
		return fmt.Errorf("BUG: the outer enclave reads its nested child")
	}
	fmt.Println("nested enclave is isolated from BOTH ancestors")

	// Both levels serve calls.
	if got, err := outer.Invoke(0, 10_000, 10); err != nil || got != 11 {
		return fmt.Errorf("outer invoke = %d, %v", got, err)
	}
	if got, err := inner.Invoke(0, 10_000, 10); err != nil || got != 12 {
		return fmt.Errorf("inner invoke = %d, %v", got, err)
	}
	fmt.Println("both levels answered mediated calls (outer: 10+1, inner: 10+2)")

	// Secure channel: the outer enclave shares one of its own pages
	// with the child — refcount 2, invisible to dom0.
	chanRegion, err := oc.Alloc(1)
	if err != nil {
		return err
	}
	if _, err := p.Monitor.Share(outer.ID(), heapNode, inner.ID(),
		tyche.MemResource(chanRegion), tyche.MemRW, tyche.CleanZero); err != nil {
		return err
	}
	if _, err := inner.Seal(); err != nil {
		return err
	}
	if err := p.Monitor.CopyInto(outer.ID(), chanRegion.Start, []byte("enclave-to-enclave")); err != nil {
		return err
	}
	got, err := p.Monitor.CopyFrom(inner.ID(), chanRegion.Start, 18)
	if err != nil {
		return err
	}
	if _, err := p.Monitor.CopyFrom(tyche.InitialDomain, chanRegion.Start, 1); err == nil {
		return fmt.Errorf("BUG: dom0 reads the enclave channel")
	}
	fmt.Printf("secure channel carried %q between the enclaves; dom0 denied\n", got)

	// Attestation shows the sharing explicitly.
	rep, err := inner.Attest([]byte("n"))
	if err != nil {
		return err
	}
	for _, rec := range rep.Resources {
		if rec.RefCount > 1 {
			fmt.Printf("inner's attested shared region: %v (refs=%d)\n", rec.Resource, rec.RefCount)
		}
	}

	// One revocation tears down the whole lineage.
	if err := p.Monitor.KillDomain(tyche.InitialDomain, outer.ID()); err != nil {
		return err
	}
	if p.Monitor.CheckAccess(inner.ID(), innerText.Start, tyche.RightRead) {
		return fmt.Errorf("BUG: nested enclave survived the cascade")
	}
	fmt.Println("killing the outer enclave cascaded to the nested one: lineage revoked, memory obliterated")
	return nil
}
