// Quickstart: boot a machine under the isolation monitor, load a sealed
// enclave, call into it, and verify the attestation chain end to end —
// the minimal tour of the three separated powers.
package main

import (
	"fmt"
	"log"

	tyche "github.com/tyche-sim/tyche"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot: machine + TPM + monitor; dom0 gets everything else.
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		return err
	}
	fmt.Println(p)

	// Legislative: dom0 defines the policy by building an enclave. The
	// image's manifest says what is confidential and measured; the
	// service below returns its argument plus two.
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3) // r1 = r2 + 2
	a.Movi(0, 3)   // monitor call: return to caller
	a.Vmcall()
	a.Hlt()
	img := tyche.NewProgram("quickstart", a.MustAssemble(0))

	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		return err
	}
	fmt.Printf("enclave %d sealed with measurement %v\n", enclave.ID(), enclave.Measurement())

	// Executive: the monitor mediates the call; the enclave's code runs
	// on the simulated core under its own access filter.
	got, err := enclave.Invoke(0, 10_000, 40)
	if err != nil {
		return err
	}
	fmt.Printf("enclave computed 40 + 2 = %d\n", got)

	// The creator — the most privileged software on the machine — has
	// no access to what it granted away.
	text, _ := enclave.SegmentRegion(".text")
	if _, err := p.Monitor.CopyFrom(tyche.InitialDomain, text.Start, 8); err == nil {
		return fmt.Errorf("BUG: dom0 read enclave memory")
	}
	fmt.Println("dom0's read of enclave memory: denied by the monitor")

	// Judiciary: a remote verifier checks the chain — TPM quote binds
	// the monitor, the monitor signs the domain report, the offline
	// image hash pins the identity, and the reference counts prove
	// exclusive ownership.
	sess, err := p.VerifySession([]byte("boot-nonce"))
	if err != nil {
		return err
	}
	report, err := enclave.Attest([]byte("fresh-nonce"))
	if err != nil {
		return err
	}
	if err := sess.VerifyDomain(report, []byte("fresh-nonce")); err != nil {
		return err
	}
	expected, err := img.Measurement(enclave.Base())
	if err != nil {
		return err
	}
	if err := tyche.RequireMeasurement(report, expected); err != nil {
		return err
	}
	if err := tyche.RequireSealed(report); err != nil {
		return err
	}
	if err := tyche.RequireExclusiveMemory(report); err != nil {
		return err
	}
	fmt.Println("remote verification: quote ok, report ok, measurement pinned, memory exclusive")
	fmt.Println("quickstart complete")
	return nil
}
