package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/tyche-sim/tyche/internal/bench"
)

// BENCH_scale.json schema: the A/B join of one fine-grained and one
// big-lock C18 run. Speedup is throughput ratio (fine over big lock)
// at identical workload and worker count.
type scalePoint struct {
	Workload      string
	Workers       int
	FineWallNs    float64
	BigWallNs     float64
	FineOpsPerSec float64
	BigOpsPerSec  float64
	FineLockShare float64
	BigLockShare  float64
	Speedup       float64
}

type scaleOutput struct {
	RequireSpeedup  float64
	CapringRequire  float64
	GateWorkers     int
	GateSpeedups    map[string]float64 // workload -> speedup at GateWorkers
	// GateApplied is false when the host that produced the runs cannot
	// express gateWorkers-way parallelism (GoMaxProc too low): lock
	// policies cannot change wall time without hardware threads to
	// contend on, so the speedup gate degrades to cycle bit-identity.
	GateApplied     bool
	Pass            bool
	CyclesIdentical bool
	Points          []scalePoint
	Fine            *benchOutput
	Biglock         *benchOutput
}

// c18Workloads and c18Workers mirror the C18 sweep; points absent from
// either input (quick runs sweep a subset) are skipped.
var (
	c18Workloads = []string{"capring", "storm"}
	c18Workers   = []int{1, 2, 4, 8}
)

const gateWorkers = 4

// capringRequire is the share+revoke A/B gate. Under the old scheme a
// revocation held the monitor lock exclusively, so the capring workload
// serialised under either policy and the merge only demanded "no
// regression" (0.9x). Epoch-based reclamation detaches the subtree
// under the shared lock and defers frees past the grace period, so
// revoke-heavy work must now beat the big lock measurably at the gate
// point, not just tie it.
const capringRequire = 1.1

func loadC18(path string) (*benchOutput, map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("baseline %s does not exist — generate it first with `tyche-bench -experiment C18 -out %s` (build the big-lock side with -tags biglock)", path, path)
		}
		return nil, nil, fmt.Errorf("reading baseline %s: %w", path, err)
	}
	var doc benchOutput
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var c18 *bench.Result
	for _, r := range doc.Results {
		// Results may carry nulls (hand-edited or truncated files);
		// skip them instead of dereferencing.
		if r != nil && r.ID == "C18" {
			c18 = r
		}
	}
	if c18 == nil {
		return nil, nil, fmt.Errorf("%s: no C18 result (run with -experiment C18)", path)
	}
	if len(c18.Metrics) == 0 {
		return nil, nil, fmt.Errorf("%s: C18 result carries no metrics (file from an older build?)", path)
	}
	return &doc, c18.Metrics, nil
}

// mergeScale joins a fine-grained and a big-lock C18 run into the
// BENCH_scale.json A/B report, prints the table, and applies the
// speedup gate. spec is "fine.json,biglock.json".
func mergeScale(spec, out string, requireSpeedup float64) error {
	paths := strings.Split(spec, ",")
	if len(paths) != 2 {
		return fmt.Errorf("-merge wants two comma-separated files (fine.json,biglock.json), got %q", spec)
	}
	fineDoc, fine, err := loadC18(strings.TrimSpace(paths[0]))
	if err != nil {
		return err
	}
	bigDoc, big, err := loadC18(strings.TrimSpace(paths[1]))
	if err != nil {
		return err
	}
	if fine["biglock"] != 0 {
		return fmt.Errorf("%s: first file must come from the default (fine-grained) build", paths[0])
	}
	if big["biglock"] != 1 {
		return fmt.Errorf("%s: second file must come from a -tags biglock build", paths[1])
	}

	doc := scaleOutput{
		RequireSpeedup: requireSpeedup,
		CapringRequire: capringRequire,
		GateWorkers:    gateWorkers,
		GateSpeedups:   map[string]float64{},
		Pass:           true,
		Fine:           fineDoc,
		Biglock:        bigDoc,
	}

	// The locking policy may change timing only, never the simulated
	// machine's history: single-worker runs execute the same guest
	// instructions in the same order in both builds, so their simulated
	// cycle counts must be bit-identical.
	doc.CyclesIdentical = true
	for _, wl := range c18Workloads {
		key := wl + "_w1_cycles"
		fc, fok := fine[key]
		bc, bok := big[key]
		if !fok || !bok {
			continue
		}
		if fc != bc {
			doc.CyclesIdentical = false
			doc.Pass = false
			fmt.Fprintf(os.Stderr, "tyche-bench: FAIL %s: single-worker cycles differ across builds: fine=%.0f biglock=%.0f\n", wl, fc, bc)
		}
	}

	fmt.Printf("%-8s %-7s %12s %12s %10s %10s %8s\n",
		"workload", "workers", "fine us", "biglock us", "fine lock", "big lock", "speedup")
	for _, wl := range c18Workloads {
		for _, w := range c18Workers {
			tag := fmt.Sprintf("%s_w%d", wl, w)
			fw, fok := fine[tag+"_wall_ns"]
			bw, bok := big[tag+"_wall_ns"]
			if !fok || !bok {
				continue
			}
			p := scalePoint{
				Workload: wl, Workers: w,
				FineWallNs: fw, BigWallNs: bw,
				FineOpsPerSec: fine[tag+"_ops_per_sec"],
				BigOpsPerSec:  big[tag+"_ops_per_sec"],
				FineLockShare: fine[tag+"_lock_share"],
				BigLockShare:  big[tag+"_lock_share"],
			}
			if p.BigOpsPerSec > 0 {
				p.Speedup = p.FineOpsPerSec / p.BigOpsPerSec
			}
			doc.Points = append(doc.Points, p)
			if w == gateWorkers {
				doc.GateSpeedups[wl] = p.Speedup
			}
			fmt.Printf("%-8s %-7d %12.0f %12.0f %9.1f%% %9.1f%% %7.2fx\n",
				wl, w, fw/1e3, bw/1e3, p.FineLockShare*100, p.BigLockShare*100, p.Speedup)
		}
	}

	// Acceptance gate: at 4 workers the fine-grained monitor must beat
	// the big lock by the required factor on the transition storm — the
	// workload the lock-free read path exists for — and by
	// capringRequire on the capability ring, whose revocations now run
	// under the shared lock (detach + grace period + deferred free)
	// instead of stopping the world. The gate only means something when the host can
	// actually run gateWorkers monitor entries in parallel: with
	// GOMAXPROCS below that, goroutines time-share one hardware thread,
	// no lock is ever contended for wall-clock time, and both builds
	// measure the same serial execution — so the gate falls back to the
	// build-independent invariant (bit-identical single-worker cycles).
	doc.GateApplied = requireSpeedup > 0 && fineDoc.GoMaxProc >= gateWorkers && bigDoc.GoMaxProc >= gateWorkers
	if requireSpeedup > 0 && !doc.GateApplied {
		fmt.Fprintf(os.Stderr, "tyche-bench: SKIP speedup gate: host GOMAXPROCS %d/%d cannot express %d-way parallelism (cycle identity still enforced)\n",
			fineDoc.GoMaxProc, bigDoc.GoMaxProc, gateWorkers)
	}
	if doc.GateApplied {
		storm, ok := doc.GateSpeedups["storm"]
		if !ok {
			doc.Pass = false
			fmt.Fprintf(os.Stderr, "tyche-bench: FAIL no storm w%d point in both inputs\n", gateWorkers)
		} else if storm < requireSpeedup {
			doc.Pass = false
			fmt.Fprintf(os.Stderr, "tyche-bench: FAIL storm w%d speedup %.2fx < required %.2fx\n",
				gateWorkers, storm, requireSpeedup)
		}
		if capring, ok := doc.GateSpeedups["capring"]; ok && capring < capringRequire {
			doc.Pass = false
			fmt.Fprintf(os.Stderr, "tyche-bench: FAIL capring w%d speedup %.2fx < required %.2fx (concurrent revocation must beat the big lock)\n",
				gateWorkers, capring, capringRequire)
		}
	}

	if out != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", out, err)
		}
		fmt.Fprintf(os.Stderr, "tyche-bench: wrote %s (%d A/B points)\n", out, len(doc.Points))
	}
	if !doc.Pass {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tyche-bench: A/B merge PASS (cycles identical: %v; speedup gate %.2fx at w%d applied: %v)\n",
		doc.CyclesIdentical, requireSpeedup, gateWorkers, doc.GateApplied)
	return nil
}
