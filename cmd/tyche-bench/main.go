// tyche-bench regenerates the paper's figures and claims as tables (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	tyche-bench -list
//	tyche-bench -experiment F2
//	tyche-bench                  # run everything
//	tyche-bench -backend pmp -experiment F4
//
// The process exits non-zero if any experiment's shape checks fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/tyche-sim/tyche/internal/bench"
	"github.com/tyche-sim/tyche/internal/core"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (F1-F4, C1-C14); empty runs all")
		backend    = flag.String("backend", "vtx", "enforcement backend: vtx or pmp")
		quick      = flag.Bool("quick", false, "smaller sweeps")
		seed       = flag.Int64("seed", 1, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		asJSON     = flag.Bool("json", false, "emit results as JSON (for CI)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-4s %-70s %s\n", "ID", "TITLE", "PAPER ARTEFACT")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %-70s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	cfg := bench.Config{
		Backend: core.BackendKind(*backend),
		Quick:   *quick,
		Seed:    *seed,
	}
	failed := 0
	var results []*bench.Result
	run := func(e bench.Experiment) {
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tyche-bench: %s: %v\n", e.ID, err)
			failed++
			return
		}
		if *asJSON {
			results = append(results, res)
		} else {
			res.Render(os.Stdout)
		}
		failed += len(res.Failed())
	}
	if *experiment != "" {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "tyche-bench: unknown experiment %q (-list to enumerate)\n", *experiment)
			os.Exit(2)
		}
		run(e)
	} else {
		for _, e := range bench.Experiments() {
			run(e)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "tyche-bench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tyche-bench: %d failed check(s)\n", failed)
		os.Exit(1)
	}
}
