// tyche-bench regenerates the paper's figures and claims as tables (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	tyche-bench -list
//	tyche-bench -experiment F2
//	tyche-bench                  # run everything
//	tyche-bench -backend pmp -experiment F4
//	tyche-bench -parallel 4 -out BENCH_smp.json
//	tyche-bench -traced -experiment C15
//	tyche-bench -experiment C19 -out BENCH_sched.json
//	tyche-bench -verify 16 -experiment C21 -out BENCH_check.json
//
// A/B lock-scalability merge: run C18 from a default build and from a
// `-tags biglock` build, then join the two JSON files into
// BENCH_scale.json, computing per-point speedups and enforcing the
// acceptance gate (and single-worker cycle bit-identity):
//
//	tyche-bench -experiment C18 -out fine.json
//	tyche-bench-biglock -experiment C18 -out biglock.json
//	tyche-bench -merge fine.json,biglock.json -require-speedup 1.5 -out BENCH_scale.json
//
// The process exits non-zero if any experiment's shape checks fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/tyche-sim/tyche/internal/bench"
	"github.com/tyche-sim/tyche/internal/core"
)

// benchOutput is the BENCH_smp.json schema: the run configuration plus
// every experiment result (tables, checks, wall-clock, metrics).
type benchOutput struct {
	Backend   string
	Quick     bool
	Seed      int64
	Parallel  int
	GoMaxProc int
	WallNanos int64
	Results   []*bench.Result
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (F1-F4, C1-C23); empty runs all")
		backend    = flag.String("backend", "vtx", "enforcement backend: vtx or pmp")
		quick      = flag.Bool("quick", false, "smaller sweeps")
		seed       = flag.Int64("seed", 1, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		asJSON     = flag.Bool("json", false, "emit results as JSON to stdout (for CI)")
		parallel   = flag.Int("parallel", 1, "experiments to run concurrently")
		out        = flag.String("out", "", "write machine-readable results (BENCH_smp.json) to this file")
		traced     = flag.Bool("traced", false, "run every experiment with the cycle-stamped tracer and online invariant checker attached")
		verify     = flag.Int("verify", 0, "attach the always-on runtime-verification service to every experiment world: 1 = exact sharded checking, N>1 = 1-in-N sampling of high-rate events (0 disables)")
		merge      = flag.String("merge", "", "merge two C18 result files (fine.json,biglock.json) into an A/B scalability report instead of running experiments")
		reqSpeedup = flag.Float64("require-speedup", 0, "with -merge: fail unless the fine-grained build beats the big lock by this factor at 4 workers (0 disables the gate)")
	)
	flag.Parse()

	if *merge != "" {
		if err := mergeScale(*merge, *out, *reqSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "tyche-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-4s %-70s %s\n", "ID", "TITLE", "PAPER ARTEFACT")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %-70s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	cfg := bench.Config{
		Trace:   *traced,
		Verify:  *verify,
		Backend: core.BackendKind(*backend),
		Quick:   *quick,
		Seed:    *seed,
	}
	exps := bench.Experiments()
	if *experiment != "" {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "tyche-bench: unknown experiment %q (-list to enumerate)\n", *experiment)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	start := time.Now()
	results, err := bench.RunExperiments(exps, cfg, *parallel)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tyche-bench: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, res := range results {
		if !*asJSON {
			res.Render(os.Stdout)
		}
		failed += len(res.Failed())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "tyche-bench:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		doc := benchOutput{
			Backend:   *backend,
			Quick:     *quick,
			Seed:      *seed,
			Parallel:  *parallel,
			GoMaxProc: runtime.GOMAXPROCS(0),
			WallNanos: wall.Nanoseconds(),
			Results:   results,
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tyche-bench: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tyche-bench: wrote %s (%d experiments, %s wall)\n",
			*out, len(results), wall.Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tyche-bench: %d failed check(s)\n", failed)
		os.Exit(1)
	}
}
