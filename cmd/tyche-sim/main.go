// tyche-sim boots the simulated machine under the isolation monitor,
// runs a small confidential-service scenario, and dumps the machine's
// isolation state: domains, resources, reference counts, and monitor
// statistics. With -emit it writes an attestation bundle that
// tyche-verify can check on another machine.
//
// Usage:
//
//	tyche-sim
//	tyche-sim -backend pmp -mem 64 -cores 8
//	tyche-sim -emit evidence.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	tyche "github.com/tyche-sim/tyche"
	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
)

func main() {
	var (
		backend = flag.String("backend", "vtx", "enforcement backend: vtx or pmp")
		memMiB  = flag.Uint64("mem", 32, "physical memory in MiB")
		cores   = flag.Int("cores", 4, "CPU cores")
		emit    = flag.String("emit", "", "write an attestation bundle to this file")
	)
	flag.Parse()
	if err := run(*backend, *memMiB, *cores, *emit); err != nil {
		fmt.Fprintln(os.Stderr, "tyche-sim:", err)
		os.Exit(1)
	}
}

func run(backend string, memMiB uint64, cores int, emit string) error {
	p, err := tyche.NewPlatform(tyche.Options{
		MemBytes: memMiB << 20,
		Cores:    cores,
		Backend:  core.BackendKind(backend),
	})
	if err != nil {
		return err
	}
	fmt.Println(p)
	fmt.Printf("monitor measured into TPM PCR17; attestation key bound via quote\n\n")

	// A confidential adder service: sealed enclave, exclusive memory.
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // CallReturn
	a.Vmcall()
	a.Hlt()
	img := tyche.NewProgram("adder-enclave", a.MustAssemble(0))
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		return err
	}
	got, err := enclave.Invoke(0, 10000, 40)
	if err != nil {
		return err
	}
	fmt.Printf("enclave %d (measurement %v) computed 40+2 = %d under full isolation\n",
		enclave.ID(), enclave.Measurement(), got)

	// The privileged domain cannot reach it.
	text, _ := enclave.SegmentRegion(".text")
	if _, err := p.Monitor.CopyFrom(tyche.InitialDomain, text.Start, 8); err != nil {
		fmt.Printf("dom0 read of enclave text: DENIED (%v)\n\n", text)
	} else {
		return fmt.Errorf("isolation failure: dom0 read enclave memory")
	}

	// Dump domains.
	fmt.Println("DOMAINS")
	fmt.Printf("  %-4s %-16s %-8s %-9s %-10s %s\n", "id", "name", "state", "mem(KiB)", "cores", "devices")
	for _, id := range p.Monitor.Domains() {
		d, err := p.Monitor.Domain(id)
		if err != nil {
			return err
		}
		recs, err := p.Monitor.Enumerate(id)
		if err != nil {
			return err
		}
		var kib uint64
		var cs, ds []string
		for _, r := range recs {
			switch r.Resource.Kind {
			case cap.ResMemory:
				kib += r.Resource.Mem.Size() / 1024
			case cap.ResCore:
				cs = append(cs, r.Resource.Core.String())
			case cap.ResDevice:
				ds = append(ds, r.Resource.Device.String())
			}
		}
		fmt.Printf("  %-4d %-16s %-8s %-9d %-10s %s\n", id, d.Name(), d.State(),
			kib, strings.Join(cs, ","), strings.Join(ds, ","))
	}

	// Reference-count map (Figure 4 view).
	fmt.Println("\nMEMORY REFERENCE COUNTS")
	for _, rc := range p.Monitor.RefCounts() {
		fmt.Printf("  %s\n", rc)
	}

	// Capability lineage (who derived what from whom).
	fmt.Println("\nCAPABILITY LINEAGE")
	for _, line := range strings.Split(strings.TrimRight(p.Monitor.LineageTree(), "\n"), "\n") {
		fmt.Println(" ", line)
	}

	// Monitor statistics.
	st := p.Monitor.Stats()
	fmt.Printf("\nMONITOR STATS  transitions=%d fast=%d vmexits=%d capops=%d revocations=%d attests=%d denied=%d\n",
		st.Transitions, st.FastSwitches, st.VMExits, st.CapOps, st.Revocations, st.Attests, st.DeniedOps)
	fmt.Printf("CYCLES ELAPSED %d\n", p.Cycles())

	if emit != "" {
		bootNonce := []byte("tyche-sim-boot")
		quote, err := p.Monitor.BootQuote(bootNonce)
		if err != nil {
			return err
		}
		nonce := []byte("tyche-sim-domain")
		rep, err := enclave.Attest(nonce)
		if err != nil {
			return err
		}
		meas, err := img.Measurement(enclave.Base())
		if err != nil {
			return err
		}
		b := &attest.Bundle{
			EndorsementKey:      p.TPM.EndorsementKey(),
			MonitorIdentity:     p.Monitor.Identity(),
			BootNonce:           bootNonce,
			Quote:               quote,
			DomainNonce:         nonce,
			Report:              rep,
			ExpectedMeasurement: &meas,
		}
		if err := b.Save(emit); err != nil {
			return err
		}
		fmt.Printf("\nattestation bundle written to %s (verify with tyche-verify)\n", emit)
	}
	return nil
}
