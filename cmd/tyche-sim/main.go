// tyche-sim boots the simulated machine under the isolation monitor,
// runs a small confidential-service scenario, and dumps the machine's
// isolation state: domains, resources, reference counts, and monitor
// statistics. With -emit it writes an attestation bundle that
// tyche-verify can check on another machine.
//
// With -faultseed or -faultschedule it additionally runs the fault
// containment demo: a sacrificial enclave is launched on core 1, a
// deterministic fault schedule is injected into the simulated hardware,
// and the monitor's containment path (kill, scrub, reclaim) is shown.
// The exact run replays from the printed schedule alone.
//
// With -domains N it runs the multi-tenant scheduling demo: N tenant
// domains are time-multiplexed over the worker cores by the preemptive
// scheduler (internal/sched), half of them yielding cooperatively, and
// the dispatch statistics plus the deterministic schedule hash are
// printed.
//
// With -batched it runs the batched-ABI demo: dom0 drives a
// submission/completion ring through a share/revoke batch, showing one
// doorbell per flush and the batch's TLB shootdowns coalesced into a
// single cross-core round.
//
// With -fleet N it runs the datacenter fleet demo instead: N simulated
// machines under one control plane serve a load-balanced confidential
// workload, a tenant is live-migrated between nodes over an attested
// channel, a node is machine-checked mid-serving, and every node's
// hash-chained runtime-verification digests are audited centrally.
//
// Usage:
//
//	tyche-sim
//	tyche-sim -backend pmp -mem 64 -cores 8
//	tyche-sim -emit evidence.json
//	tyche-sim -faultseed 7
//	tyche-sim -faultschedule mc1@128
//	tyche-sim -domains 12
//	tyche-sim -batched
//	tyche-sim -fleet 4
//	tyche-sim -trace trace.json
//
// With -trace the whole run is recorded by the cycle-stamped monitor
// tracer, audited by the online invariant checker, and written out in
// Chrome trace-event format (load in chrome://tracing or Perfetto).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	tyche "github.com/tyche-sim/tyche"
	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/fleet"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

func main() {
	var (
		backend   = flag.String("backend", "vtx", "enforcement backend: vtx or pmp")
		memMiB    = flag.Uint64("mem", 32, "physical memory in MiB")
		cores     = flag.Int("cores", 4, "CPU cores")
		emit      = flag.String("emit", "", "write an attestation bundle to this file")
		faultSeed = flag.Int64("faultseed", 0, "derive a deterministic fault schedule from this seed and run the containment demo")
		faultSpec = flag.String("faultschedule", "", "explicit fault schedule (e.g. mc1@128,stall1@64); overrides -faultseed")
		domains   = flag.Int("domains", 0, "run the multi-tenant scheduling demo with this many tenant domains time-multiplexed over the worker cores")
		batched   = flag.Bool("batched", false, "run the batched-ABI demo: a submission ring carrying a share/revoke batch with one doorbell per flush and coalesced shootdowns")
		fleetN    = flag.Int("fleet", 0, "run the datacenter fleet demo with this many simulated machines under one control plane")
		tracePath = flag.String("trace", "", "record the run and write a Chrome trace-event file here")
	)
	flag.Parse()
	if *fleetN > 0 {
		if err := fleetDemo(*fleetN, core.BackendKind(*backend)); err != nil {
			fmt.Fprintln(os.Stderr, "tyche-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*backend, *memMiB, *cores, *emit, *faultSeed, *faultSpec, *domains, *batched, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "tyche-sim:", err)
		os.Exit(1)
	}
}

func run(backend string, memMiB uint64, cores int, emit string, faultSeed int64, faultSpec string, domains int, batched bool, tracePath string) error {
	p, err := tyche.NewPlatform(tyche.Options{
		MemBytes: memMiB << 20,
		Cores:    cores,
		Backend:  core.BackendKind(backend),
	})
	if err != nil {
		return err
	}
	var tracer *trace.Tracer
	var checker *check.Checker
	if tracePath != "" {
		if !trace.Compiled {
			return fmt.Errorf("this binary was built with the notrace tag; -trace is unavailable")
		}
		mach := p.Monitor.Machine()
		tracer = mach.NewTracer(1 << 15)
		checker = check.New()
		tracer.Attach(checker)
		mach.SetTracer(tracer)
	}
	fmt.Println(p)
	fmt.Printf("monitor measured into TPM PCR17; attestation key bound via quote\n\n")

	// A confidential adder service: sealed enclave, exclusive memory.
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // CallReturn
	a.Vmcall()
	a.Hlt()
	img := tyche.NewProgram("adder-enclave", a.MustAssemble(0))
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		return err
	}
	got, err := enclave.Invoke(0, 10000, 40)
	if err != nil {
		return err
	}
	fmt.Printf("enclave %d (measurement %v) computed 40+2 = %d under full isolation\n",
		enclave.ID(), enclave.Measurement(), got)

	// The privileged domain cannot reach it.
	text, _ := enclave.SegmentRegion(".text")
	if _, err := p.Monitor.CopyFrom(tyche.InitialDomain, text.Start, 8); err != nil {
		fmt.Printf("dom0 read of enclave text: DENIED (%v)\n\n", text)
	} else {
		return fmt.Errorf("isolation failure: dom0 read enclave memory")
	}

	// Dump domains.
	fmt.Println("DOMAINS")
	fmt.Printf("  %-4s %-16s %-8s %-9s %-10s %s\n", "id", "name", "state", "mem(KiB)", "cores", "devices")
	for _, id := range p.Monitor.Domains() {
		d, err := p.Monitor.Domain(id)
		if err != nil {
			return err
		}
		recs, err := p.Monitor.Enumerate(id)
		if err != nil {
			return err
		}
		var kib uint64
		var cs, ds []string
		for _, r := range recs {
			switch r.Resource.Kind {
			case cap.ResMemory:
				kib += r.Resource.Mem.Size() / 1024
			case cap.ResCore:
				cs = append(cs, r.Resource.Core.String())
			case cap.ResDevice:
				ds = append(ds, r.Resource.Device.String())
			}
		}
		fmt.Printf("  %-4d %-16s %-8s %-9d %-10s %s\n", id, d.Name(), d.State(),
			kib, strings.Join(cs, ","), strings.Join(ds, ","))
	}

	// Reference-count map (Figure 4 view).
	fmt.Println("\nMEMORY REFERENCE COUNTS")
	for _, rc := range p.Monitor.RefCounts() {
		fmt.Printf("  %s\n", rc)
	}

	// Capability lineage (who derived what from whom).
	fmt.Println("\nCAPABILITY LINEAGE")
	for _, line := range strings.Split(strings.TrimRight(p.Monitor.LineageTree(), "\n"), "\n") {
		fmt.Println(" ", line)
	}

	// Monitor statistics.
	st := p.Monitor.Stats()
	fmt.Printf("\nMONITOR STATS  transitions=%d fast=%d vmexits=%d capops=%d revocations=%d attests=%d denied=%d\n",
		st.Transitions, st.FastSwitches, st.VMExits, st.CapOps, st.Revocations, st.Attests, st.DeniedOps)
	fmt.Printf("CYCLES ELAPSED %d\n", p.Cycles())

	if emit != "" {
		bootNonce := []byte("tyche-sim-boot")
		quote, err := p.Monitor.BootQuote(bootNonce)
		if err != nil {
			return err
		}
		nonce := []byte("tyche-sim-domain")
		rep, err := enclave.Attest(nonce)
		if err != nil {
			return err
		}
		meas, err := img.Measurement(enclave.Base())
		if err != nil {
			return err
		}
		b := &attest.Bundle{
			EndorsementKey:      p.TPM.EndorsementKey(),
			MonitorIdentity:     p.Monitor.Identity(),
			BootNonce:           bootNonce,
			Quote:               quote,
			DomainNonce:         nonce,
			Report:              rep,
			ExpectedMeasurement: &meas,
		}
		if err := b.Save(emit); err != nil {
			return err
		}
		fmt.Printf("\nattestation bundle written to %s (verify with tyche-verify)\n", emit)
	}
	if faultSeed != 0 || faultSpec != "" {
		if err := faultDemo(p, faultSeed, faultSpec); err != nil {
			return err
		}
	}
	if domains > 0 {
		if err := schedDemo(p, domains); err != nil {
			return err
		}
	}
	if batched {
		if err := batchedDemo(p); err != nil {
			return err
		}
	}
	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, tracer.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nTRACE  %d events recorded (%d beyond ring capacity) -> %s (chrome://tracing)\n",
			tracer.Len(), tracer.Dropped(), tracePath)
		if err := checker.Err(); err != nil {
			return fmt.Errorf("online invariant checker: %w", err)
		}
		fmt.Println("online invariant checker: every recorded monitor operation satisfied its invariants")
	}
	return nil
}

// fleetDemo boots n simulated machines under one control plane and
// walks the whole fleet story: attested placement behind a load
// balancer, serving, live migration over an attested channel, a node
// kill mid-serving with automatic re-placement, and the central audit
// of every node's hash-chained runtime-verification digests.
func fleetDemo(n int, backend core.BackendKind) error {
	if n < 2 {
		return fmt.Errorf("fleet demo needs at least 2 nodes")
	}
	f, err := fleet.New(fleet.Config{Nodes: n, CoresPerNode: 3, MemBytes: 16 << 20, Backend: backend, Spin: 50})
	if err != nil {
		return err
	}
	replicas := 2
	if n < replicas {
		replicas = n
	}
	fmt.Printf("FLEET DEMO  %d nodes x 3 cores, 2 services x %d replicas, every placement attested\n", n, replicas)
	if err := f.Deploy(fleet.ServiceSpec{Name: "alpha", Delta: 100}, replicas); err != nil {
		return err
	}
	if err := f.Deploy(fleet.ServiceSpec{Name: "beta", Delta: 9000}, replicas); err != nil {
		return err
	}
	for _, svc := range []string{"alpha", "beta"} {
		for _, pl := range f.LB().Placements(svc) {
			fmt.Printf("  placed %-5s on %s as domain %d (measurement verified against the node's TPM chain)\n",
				svc, f.Nodes[pl.Node].Name, pl.Dom)
		}
	}
	stats, err := f.Serve([]string{"alpha", "beta"}, 400, 4)
	if err != nil {
		return err
	}
	fmt.Printf("  served %d load-balanced requests, every reply carrying its tenant's transform\n", stats.Requests)

	pl := f.LB().Placements("alpha")[0]
	to := -1
	hosts := f.LB().ReplicaNodes("alpha")
	for i := range f.Nodes {
		if i != pl.Node && !hosts[i] {
			to = i
			break
		}
	}
	if to >= 0 {
		if err := f.Migrate("alpha", pl.Node, to, nil); err != nil {
			return err
		}
		fmt.Printf("  live-migrated alpha %s -> %s over the attested channel (re-attested on arrival, crypto-erased on departure), blackout %v\n",
			f.Nodes[pl.Node].Name, f.Nodes[to].Name, time.Duration(f.Blackouts()[0]))
	}

	victim := 0
	for i := range f.Nodes {
		if f.LB().NodeCount(i) > 0 {
			victim = i
			break
		}
	}
	f.ArmKill(victim, 2000)
	stats, err = f.Serve([]string{"alpha", "beta"}, 400, 4)
	if err != nil {
		return err
	}
	fmt.Printf("  machine-checked %s mid-serving: %d/400 requests completed (%d retried), domains re-placed on survivors\n",
		f.Nodes[victim].Name, stats.Requests, stats.Retries)

	audits, err := f.Audit()
	if err != nil {
		return err
	}
	if !trace.Compiled {
		fmt.Println("  runtime verification compiled out (notrace build)")
		return nil
	}
	clean := 0
	for _, a := range audits {
		if a.SelfErr == nil && len(a.Flags) == 0 {
			clean++
		} else {
			fmt.Printf("  AUDIT FLAG %s: self=%v flags=%v\n", a.Node, a.SelfErr, a.Flags)
		}
	}
	fmt.Printf("  fleet verification: %d/%d node digest chains verified centrally, all verdicts clean\n", clean, len(audits))
	if clean != len(audits) {
		return fmt.Errorf("fleet audit flagged %d node(s)", len(audits)-clean)
	}
	return nil
}

// batchedDemo exercises the asynchronous batched ABI from dom0's
// client: a submission ring takes a mixed batch (log + TLB-cleanup
// shares), one doorbell drains it, the minted capabilities are revoked
// in a second batch whose shootdowns coalesce into a single cross-core
// round, and the ring counters are printed against what the trap-per-op
// path would have cost.
func batchedDemo(p *tyche.Platform) error {
	cl := p.Dom0
	fmt.Printf("\nBATCHED ABI DEMO  submission ring, one doorbell per batch\n")
	lo := tyche.DefaultLoadOptions()
	lo.Seal = false
	a := tyche.NewAsm()
	a.Hlt()
	peer, err := cl.Load(tyche.NewProgram("ring-peer", a.MustAssemble(0)), lo)
	if err != nil {
		return err
	}
	const shares = 4
	region, err := cl.Alloc(shares)
	if err != nil {
		return err
	}
	r, err := cl.NewRing(8)
	if err != nil {
		return err
	}
	before := p.Monitor.Stats()

	// Batch 1: a log line plus `shares` TLB-cleanup delegations.
	if err := r.Enqueue(core.CallLog, 0xb47c); err != nil {
		return err
	}
	rightsWord := uint64(cap.MemRW) | uint64(cap.CleanFlushTLB)<<16
	for i := uint64(0); i < shares; i++ {
		if err := r.Enqueue(core.CallShare, uint64(cl.HeapNode()), uint64(peer.ID()),
			uint64(region.Start)+i*phys.PageSize, phys.PageSize, rightsWord); err != nil {
			return err
		}
	}
	n1, err := r.Flush()
	if err != nil {
		return err
	}
	cs, err := r.Reap()
	if err != nil {
		return err
	}

	// Batch 2: revoke every capability batch 1 minted — the shootdowns
	// these owe coalesce into one cross-core round.
	for _, c := range cs[1:] {
		if c.Status != core.StatusOK {
			return fmt.Errorf("share completion status %d", c.Status)
		}
		if err := r.Enqueue(core.CallRevoke, c.Result); err != nil {
			return err
		}
	}
	n2, err := r.Flush()
	if err != nil {
		return err
	}
	st := p.Monitor.Stats()
	fmt.Printf("  batch 1: %d descriptors (1 log + %d shares), one CallRingFlush doorbell\n", n1, shares)
	fmt.Printf("  batch 2: %d revocations, one doorbell, shootdowns coalesced\n", n2)
	fmt.Printf("  ring counters: ops=%d flushes=%d shootdown-rounds=%d coalesced=%d\n",
		st.RingOps-before.RingOps, st.RingFlushes-before.RingFlushes,
		st.RingShootdowns-before.RingShootdowns, st.RingOpsCoalesced-before.RingOpsCoalesced)
	fmt.Printf("  trap-per-op would have cost %d monitor entries and %d shootdown rounds; the ring cost 2 doorbells and %d round(s)\n",
		n1+n2, n2, st.RingShootdowns-before.RingShootdowns)
	return nil
}

// schedDemo time-multiplexes `domains` tenant domains over every core
// but dom0's core 0: odd tenants run a pure compute loop, even ones
// yield cooperatively each iteration. The schedule is a pure function
// of the seed, so the printed hash replays bit-identically.
func schedDemo(p *tyche.Platform, domains int) error {
	mach := p.Monitor.Machine()
	if len(mach.Cores) < 2 {
		return fmt.Errorf("scheduling demo needs at least 2 cores (dom0 keeps core 0)")
	}
	var workers []tyche.CoreID
	for i := 1; i < len(mach.Cores); i++ {
		workers = append(workers, tyche.CoreID(i))
	}
	const seed = 1
	p.Monitor.SetSchedPolicy(&sched.Policy{Quantum: 4096, Steal: true, Seed: seed})
	fmt.Printf("\nSCHEDULING DEMO  %d tenant domains over %d worker core(s), quantum 4096, seed %d\n",
		domains, len(workers), seed)
	prog := func(yield bool) func(base phys.Addr) *tyche.Asm {
		return func(base phys.Addr) *tyche.Asm {
			a := tyche.NewAsm()
			a.Movi(10, 3000)
			a.Movi(12, 1)
			a.Label("loop")
			if yield {
				a.Movi(0, uint32(core.CallYield))
				a.Vmcall()
			}
			a.Sub(10, 10, 12)
			a.Jnz(10, "loop")
			a.Hlt()
			return a
		}
	}
	for i := 0; i < domains; i++ {
		gen := prog(i%2 == 0)
		probe := tyche.NewProgram("tenant", gen(0).MustAssemble(0))
		base, err := p.Dom0.Heap().Peek(probe.TotalPages())
		if err != nil {
			return err
		}
		code, err := gen(base.Start).Assemble(base.Start)
		if err != nil {
			return err
		}
		lo := tyche.DefaultLoadOptions()
		lo.Cores = workers
		lo.Seal = false
		dom, err := p.Dom0.Load(tyche.NewProgram(fmt.Sprintf("tenant%d", i), code), lo)
		if err != nil {
			return err
		}
		if err := p.Monitor.Schedule(dom.ID()); err != nil {
			return err
		}
	}
	if _, err := p.Monitor.RunCores(8_000_000, workers...); err != nil {
		return err
	}
	st := p.Monitor.Stats()
	q := p.Monitor.Scheduler()
	fmt.Printf("  completed=%d dispatches=%d preemptions=%d yields=%d steals=%d purged=%d max_queue=%d\n",
		st.SchedCompleted, st.SchedDispatches, st.SchedPreemptions, st.SchedYields,
		st.SchedSteals, st.SchedPurged, st.SchedMaxQueue)
	fmt.Printf("  p99 transition-to-dispatch latency %d cycles over %d dispatch records\n",
		q.LatencyP99(), len(q.Records()))
	fmt.Printf("  schedule hash %#x (deterministic: same seed and arrival order replay this exact schedule)\n", q.Hash())
	if st.SchedCompleted != uint64(domains) {
		return fmt.Errorf("only %d of %d tenants completed", st.SchedCompleted, domains)
	}
	return nil
}

// faultDemo launches a sacrificial enclave on core 1, injects a
// deterministic fault schedule, and reports the monitor's containment:
// the victim is destroyed, its exclusive memory scrubbed and reclaimed
// by dom0, and the rest of the system keeps running.
func faultDemo(p *tyche.Platform, seed int64, spec string) error {
	mach := p.Monitor.Machine()
	if len(mach.Cores) < 2 {
		return fmt.Errorf("fault demo needs at least 2 cores")
	}
	var faults []fault.Fault
	var err error
	if spec != "" {
		if faults, err = fault.ParseSchedule(spec); err != nil {
			return err
		}
	} else {
		// Core faults only, aimed at core 1 where the victim runs.
		faults = fault.FromSeed(seed, 2, 0, 3)
	}
	fmt.Printf("\nFAULT INJECTION  schedule=%s\n", fault.FormatSchedule(faults))

	// The victim: an endless store loop over its own data page,
	// assembled against its final load address (two-pass, absolute
	// jump target).
	prog := func(base phys.Addr) *tyche.Asm {
		a := tyche.NewAsm()
		a.Movi(2, 0xAB)
		a.Label("loop")
		a.St(1, 0, 2)
		a.Jmp("loop")
		return a
	}
	probe := tyche.NewProgram("victim", prog(0).MustAssemble(0))
	probe.WithBSS(".data", phys.PageSize)
	base, err := p.Dom0.Heap().Peek(probe.TotalPages())
	if err != nil {
		return err
	}
	code, err := prog(base.Start).Assemble(base.Start)
	if err != nil {
		return err
	}
	img := tyche.NewProgram("victim", code)
	img.WithBSS(".data", phys.PageSize)
	lo := tyche.DefaultLoadOptions()
	lo.Cores = []tyche.CoreID{1}
	dom, err := p.Dom0.Load(img, lo)
	if err != nil {
		return err
	}
	data, _ := dom.SegmentRegion(".data")
	if err := dom.Launch(1); err != nil {
		return err
	}
	mach.Core(1).Regs[1] = uint64(data.Start)

	in := fault.NewInjector(faults...)
	in.Arm(mach, p.TPM)
	res, err := p.Monitor.RunCore(1, 500_000)
	if err != nil {
		return err
	}
	fmt.Printf("  victim domain %d running on core1: trap %v\n", dom.ID(), res.Trap)
	if res.Trap.Kind != hw.TrapMachineCheck {
		fmt.Println("  no core fault fired within the budget; nothing to contain")
		return nil
	}
	d, err := p.Monitor.Domain(dom.ID())
	if err != nil {
		return err
	}
	st := p.Monitor.Stats()
	fmt.Printf("  containment: victim state=%v  machine_checks=%d forced_kills=%d pages_scrubbed=%d cores_parked=%d\n",
		d.State(), st.MachineChecks, st.ForcedKills, st.PagesScrubbed, st.CoresParked)
	buf, err := p.Monitor.CopyFrom(tyche.InitialDomain, data.Start, 16)
	if err != nil {
		return fmt.Errorf("reclaimed memory not readable by dom0: %w", err)
	}
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
		}
	}
	fmt.Printf("  victim data page reclaimed by dom0, scrubbed=%v\n", zero)
	var fired []fault.Fault
	for _, fr := range in.Fired() {
		fired = append(fired, fr.Fault)
	}
	fmt.Printf("  replay this exact run: tyche-sim -faultschedule %s\n", fault.FormatSchedule(fired))
	return nil
}
