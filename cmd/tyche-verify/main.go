// tyche-verify is the remote verifier (the judiciary's relying party):
// it checks an attestation bundle produced by tyche-sim — TPM quote,
// monitor identity, domain report, optional expected measurement — and
// prints the attested resource enumeration with reference counts.
//
// Usage:
//
//	tyche-sim -emit evidence.json
//	tyche-verify evidence.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tyche-verify <bundle.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tyche-verify: VERIFICATION FAILED:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	b, err := attest.LoadBundle(path)
	if err != nil {
		return err
	}
	steps, err := b.Verify()
	for _, s := range steps {
		fmt.Println("  ok:", s)
	}
	if err != nil {
		return err
	}
	r := b.Report
	fmt.Printf("\nDOMAIN %d (%s)\n", r.Domain, r.Name)
	fmt.Printf("  sealed:      %v\n", r.Sealed)
	fmt.Printf("  entry:       %v\n", r.Entry)
	fmt.Printf("  measurement: %x\n", r.Measurement[:])
	fmt.Printf("  report data: %x\n", r.ReportData[:])
	fmt.Println("  resources:")
	for _, rec := range r.Resources {
		sharing := "EXCLUSIVE"
		if rec.RefCount > 1 {
			sharing = fmt.Sprintf("shared with %d other(s)", rec.RefCount-1)
		}
		fmt.Printf("    %-24s rights=%-18s refs=%d  %s\n",
			rec.Resource, rec.Rights, rec.RefCount, sharing)
	}
	// Headline policy summary.
	if err := attest.RequireSealed(r); err == nil {
		fmt.Println("  policy: domain is sealed (resource set frozen)")
	}
	exclusive := true
	for _, rec := range r.Resources {
		if rec.Resource.Kind == cap.ResMemory && rec.RefCount > 1 {
			exclusive = false
		}
	}
	if exclusive {
		fmt.Println("  policy: all memory exclusively owned (confidentiality + integrity while in use)")
	} else {
		fmt.Println("  policy: domain shares memory; cross-check peers with their reports")
	}
	fmt.Println("\nVERDICT: TRUSTED (chain of trust verified end to end)")
	return nil
}
