// tyche-hash computes domain measurements offline (§4.2: "generating a
// binary's hash offline to be compared with the attestation provided by
// Tyche"). Given a serialized domain image and its load base, the
// printed digest equals the measurement the monitor computes at seal
// time — so a remote party that built or audited the image can pin it
// in its verification policy without ever touching the target machine.
//
// Usage:
//
//	tyche-hash demo -o adder.tyi          # write a sample image
//	tyche-hash inspect adder.tyi          # show the manifest
//	tyche-hash hash -base 0x10000 adder.tyi
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/phys"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "hash":
		err = hash(os.Args[2:])
	case "disasm":
		err = disasm(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tyche-hash:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tyche-hash demo -o <file>              write a sample image
  tyche-hash inspect <file>              print the image manifest
  tyche-hash hash -base <addr> <file>    measurement at a load base
  tyche-hash disasm -base <addr> <file>  disassemble executable segments`)
	os.Exit(2)
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	out := fs.String("o", "demo.tyi", "output file")
	fs.Parse(args)
	a := hw.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // CallReturn
	a.Vmcall()
	a.Hlt()
	img := image.NewProgram("demo-adder", a.MustAssemble(0)).
		WithData(".data", []byte("demo")).
		WithShared("io", phys.PageSize)
	data, err := img.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d segments)\n", *out, len(data), len(img.Segments))
	return nil
}

func load(path string) (*image.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return image.Decode(data)
}

func inspect(args []string) error {
	if len(args) != 1 {
		usage()
	}
	img, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("image %q: entry %s+%#x, %d pages when loaded\n",
		img.Name, img.EntrySegment, img.EntryOffset, img.TotalPages())
	fmt.Printf("  %-12s %-8s %-7s %-6s %-13s %-9s\n",
		"segment", "bytes", "rights", "ring", "visibility", "measured")
	for i := range img.Segments {
		s := &img.Segments[i]
		vis := "shared"
		if s.Confidential {
			vis = "confidential"
		}
		fmt.Printf("  %-12s %-8d %-7s %-6s %-13s %-9v\n",
			s.Name, s.ByteSize(), rightsShort(s.Rights), s.Ring, vis, s.Measured)
	}
	return nil
}

func rightsShort(r cap.Rights) string {
	out := []byte("---")
	if r.Has(cap.RightRead) {
		out[0] = 'r'
	}
	if r.Has(cap.RightWrite) {
		out[1] = 'w'
	}
	if r.Has(cap.RightExec) {
		out[2] = 'x'
	}
	return string(out)
}

// disasm prints the decoded instructions of every executable segment —
// what an auditor reads before pinning a measurement in policy.
func disasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	baseStr := fs.String("base", "0x10000", "physical load base (page-aligned)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	base, err := strconv.ParseUint(*baseStr, 0, 64)
	if err != nil {
		return fmt.Errorf("bad -base %q: %w", *baseStr, err)
	}
	img, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	placements, err := img.Layout(phys.Addr(base))
	if err != nil {
		return err
	}
	entry, err := img.Entry(phys.Addr(base))
	if err != nil {
		return err
	}
	for _, p := range placements {
		if !p.Segment.Rights.Has(cap.RightExec) {
			continue
		}
		fmt.Printf("%s @ %v:\n", p.Segment.Name, p.Region)
		data := p.Segment.Data
		for off := 0; off+hw.InstrSize <= len(data); off += hw.InstrSize {
			addr := p.Region.Start + phys.Addr(off)
			ins, err := hw.Decode(data[off : off+hw.InstrSize])
			marker := "   "
			if addr == entry {
				marker = "=> "
			}
			if err != nil {
				fmt.Printf("  %s%v: <data> %x\n", marker, addr, data[off:off+hw.InstrSize])
				continue
			}
			fmt.Printf("  %s%v: %s\n", marker, addr, ins)
		}
	}
	return nil
}

func hash(args []string) error {
	fs := flag.NewFlagSet("hash", flag.ExitOnError)
	baseStr := fs.String("base", "0x10000", "physical load base (page-aligned)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	base, err := strconv.ParseUint(*baseStr, 0, 64)
	if err != nil {
		return fmt.Errorf("bad -base %q: %w", *baseStr, err)
	}
	img, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	meas, err := img.Measurement(phys.Addr(base))
	if err != nil {
		return err
	}
	fmt.Printf("%x  %s@%#x\n", meas[:], img.Name, base)
	return nil
}
