module github.com/tyche-sim/tyche

go 1.22
