package tyche_test

import (
	"testing"

	tyche "github.com/tyche-sim/tyche"
)

func TestPlatformOptionsAndHelpers(t *testing.T) {
	p, err := tyche.NewPlatform(tyche.Options{
		MemBytes: 16 << 20,
		Cores:    2,
		Devices: []tyche.DeviceSpec{
			{Name: "gpu", Class: "accelerator"},
			{Name: "nic", Class: "nic"},
			{Name: "disk", Class: "storage"},
			{Name: "misc", Class: ""},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Machine.Devices) != 4 {
		t.Fatalf("devices = %d", len(p.Machine.Devices))
	}
	if p.Cycles() == 0 {
		t.Fatal("no cycles elapsed after boot")
	}
	// HostDom0 puts dom0 on another core for invocations there.
	if err := p.HostDom0(1); err != nil {
		t.Fatal(err)
	}
	if cur, ok := p.Monitor.Current(1); !ok || cur != tyche.InitialDomain {
		t.Fatalf("core 1 current = %d, %v", cur, ok)
	}
	img := addTwoImage("svc2")
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	dom, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := dom.Invoke(1, 10_000, 8); err != nil || got != 10 {
		t.Fatalf("invoke on hosted core = %d, %v", got, err)
	}
	// The standalone Verifier helper validates this platform's chain.
	v := p.Verifier()
	q, err := p.Monitor.BootQuote([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyBoot(q, []byte("n")); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformMemoryEncryptionOption(t *testing.T) {
	// The public API reaches the MKTME engine through the machine.
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Monitor.MemoryEncryptionActive() {
		t.Fatal("encryption on by default")
	}
}

func TestPlatformCustomIdentity(t *testing.T) {
	id := []byte("my audited monitor v2")
	p, err := tyche.NewPlatform(tyche.Options{MonitorIdentity: id})
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Monitor.Identity()) != string(id) {
		t.Fatal("identity not honoured")
	}
	// A verifier trusting only the default identity rejects this boot.
	v := tyche.NewVerifier(p.TPM.EndorsementKey(), tyche.DefaultMonitorIdentity)
	q, err := p.Monitor.BootQuote([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyBoot(q, []byte("n")); err == nil {
		t.Fatal("custom identity verified against default trust set")
	}
}

func TestPlatformBadOptions(t *testing.T) {
	if _, err := tyche.NewPlatform(tyche.Options{MemBytes: 100}); err == nil {
		t.Fatal("unaligned memory accepted")
	}
}
