// Package tyche is a from-scratch implementation of the isolation
// monitor proposed in "Creating Trust by Abolishing Hierarchies"
// (HotOS '23): a minimal, attestable security layer that separates the
// powers of isolation — any software defines policies (legislative),
// the monitor alone enforces them (executive), and a TPM-anchored
// attestation chain lets third parties verify them (judiciary).
//
// Because a garbage-collected Go runtime cannot run bare metal, the
// monitor runs over a simulated commodity machine (cores with a small
// deterministic ISA, EPT/PMP access control, IOMMU, TPM, cycle cost
// model); every memory, device, and control-transfer operation is
// enforced exactly as the paper's hardware mechanisms would, so domain
// code really faults when it oversteps and all attestation crypto is
// real (SHA-256, Ed25519, X25519).
//
// The quickest way in:
//
//	p, _ := tyche.NewPlatform(tyche.Options{})
//	enclave, _ := p.Dom0.NewEnclave(img, opts)
//	report, _ := enclave.Attest(nonce)
//
// See examples/ for complete programs and internal/bench for the
// paper's experiments.
package tyche

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/oskit"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Re-exported core types. The aliases are the public API; internal
// packages stay internal so the import graph of downstream users is
// exactly this package.
type (
	// Monitor is the isolation monitor controlling one machine.
	Monitor = core.Monitor
	// DomainID identifies a trust domain.
	DomainID = core.DomainID
	// Report is a signed domain attestation.
	Report = core.Report
	// ResourceRecord is one attested resource with its reference count.
	ResourceRecord = core.ResourceRecord
	// Client issues monitor calls as one domain (libtyche).
	Client = libtyche.Client
	// Domain is a handle on a loaded domain.
	Domain = libtyche.Domain
	// LoadOptions tunes Client.Load.
	LoadOptions = libtyche.LoadOptions
	// Channel is an attested shared-memory channel.
	Channel = libtyche.Channel
	// Image is a loadable domain image with a manifest.
	Image = image.Image
	// Segment is one image segment with isolation policy.
	Segment = image.Segment
	// Machine is the simulated hardware.
	Machine = hw.Machine
	// Asm builds programs for the simulated ISA.
	Asm = hw.Asm
	// Addr is a physical address.
	Addr = phys.Addr
	// Region is a physical memory interval.
	Region = phys.Region
	// CoreID names a CPU core.
	CoreID = phys.CoreID
	// DeviceID names a PCI device.
	DeviceID = phys.DeviceID
	// Rights is a capability rights mask.
	Rights = cap.Rights
	// Cleanup is a revocation policy mask.
	Cleanup = cap.Cleanup
	// Resource names a physical resource.
	Resource = cap.Resource
	// NodeID identifies a capability node.
	NodeID = cap.NodeID
	// CapInfo is a capability node snapshot.
	CapInfo = cap.Info
	// Digest is a SHA-256 measurement.
	Digest = tpm.Digest
	// TPM is the root of trust.
	TPM = tpm.TPM
	// Verifier is a remote attestation verifier.
	Verifier = attest.Verifier
	// Session is an established verification session.
	Session = attest.Session
	// OS is the miniature guest OS kit.
	OS = oskit.OS
	// RunResult reports why a core stopped.
	RunResult = core.RunResult
	// RemoteEndpoint is one side of a cross-machine attested channel.
	RemoteEndpoint = dist.Endpoint
	// RemoteWire is the untrusted interconnect between machines.
	RemoteWire = dist.Wire
	// RemoteConn is an established attested channel.
	RemoteConn = dist.Conn
	// IRQ is a device interrupt.
	IRQ = hw.IRQ
	// IRQHandler is a domain's interrupt handler.
	IRQHandler = core.IRQHandler
)

// Re-exported rights, cleanup policies, and backends.
const (
	RightRead  = cap.RightRead
	RightWrite = cap.RightWrite
	RightExec  = cap.RightExec
	RightRun   = cap.RightRun
	RightUse   = cap.RightUse
	RightDMA   = cap.RightDMA
	RightShare = cap.RightShare
	RightGrant = cap.RightGrant
	MemRW      = cap.MemRW
	MemRX      = cap.MemRX
	MemRWX     = cap.MemRWX

	CleanNone       = cap.CleanNone
	CleanZero       = cap.CleanZero
	CleanFlushCache = cap.CleanFlushCache
	CleanFlushTLB   = cap.CleanFlushTLB
	CleanObfuscate  = cap.CleanObfuscate

	// BackendVTX selects the x86_64-style backend (EPT/VMCall/VMFUNC).
	BackendVTX = core.BackendVTX
	// BackendPMP selects the RISC-V-style machine-mode backend.
	BackendPMP = core.BackendPMP

	// InitialDomain is dom0's ID.
	InitialDomain = core.InitialDomain

	// PageSize is the access-control granularity.
	PageSize = phys.PageSize
)

// Re-exported constructors and helpers.
var (
	// NewAsm returns a program builder.
	NewAsm = hw.NewAsm
	// NewProgram builds a single-.text image; chain With* builders.
	NewProgram = image.NewProgram
	// DecodeImage parses a serialized image.
	DecodeImage = image.Decode
	// NewClient returns a libtyche client acting as a domain.
	NewClient = libtyche.New
	// DefaultLoadOptions returns Load's defaults.
	DefaultLoadOptions = libtyche.DefaultLoadOptions
	// NewVerifier builds a remote verifier from a TPM endorsement key
	// and trusted monitor identities.
	NewVerifier = attest.NewVerifier
	// VerifyReport checks a report signature (integrity only; use a
	// Session for the full chain).
	VerifyReport = core.VerifyReport
	// NewOS boots the miniature OS kit inside a domain.
	NewOS = oskit.New
	// NewOSWithClient boots the OS kit over an existing client.
	NewOSWithClient = oskit.NewWithClient
	// Measure hashes bytes into a Digest.
	Measure = tpm.Measure
	// MakeRegion builds [start, start+size).
	MakeRegion = phys.MakeRegion
	// MemResource names a memory region resource.
	MemResource = cap.MemResource
	// CoreResource names a core resource.
	CoreResource = cap.CoreResource
	// DeviceResource names a device resource.
	DeviceResource = cap.DeviceResource
	// DefaultMonitorIdentity is the measured monitor binary.
	DefaultMonitorIdentity = core.DefaultIdentity
	// ConnectRemote establishes an attested cross-machine channel.
	ConnectRemote = dist.Connect
)

// Attestation policy predicates (judiciary side).
var (
	RequireSealed          = attest.RequireSealed
	RequireMeasurement     = attest.RequireMeasurement
	RequireExclusiveMemory = attest.RequireExclusiveMemory
	RequireSharedOnlyWith  = attest.RequireSharedOnlyWith
	RequireExclusiveCore   = attest.RequireExclusiveCore
	// AuditDeployment verifies the closed-world sharing graph over a
	// set of verified reports (multi-domain attestation).
	AuditDeployment = attest.AuditDeployment
)

// SharingEdge is one attested communication path in a deployment audit.
type SharingEdge = attest.Edge

// DeviceSpec describes a PCI device for Options.
type DeviceSpec struct {
	Name string
	// Class is "accelerator", "nic", "storage", or "" (generic).
	Class string
}

// Options configures NewPlatform. The zero value is a sensible small
// machine: 32 MiB, 4 cores, a GPU and a NIC, VT-x backend.
type Options struct {
	// MemBytes is physical memory (default 32 MiB).
	MemBytes uint64
	// Cores is the CPU count (default 4).
	Cores int
	// PMPEntries is the per-core PMP budget (default 16).
	PMPEntries int
	// Backend selects enforcement (BackendVTX default).
	Backend core.BackendKind
	// Devices lists PCI devices (default: gpu0 + nic0).
	Devices []DeviceSpec
	// MonitorIdentity overrides the measured monitor binary.
	MonitorIdentity []byte
	// Dom0ReservePages keeps low pages out of dom0's heap for its own
	// text (default 16). dom0's idle text is placed at page 4.
	Dom0ReservePages uint64
}

// Platform is a booted machine: hardware, TPM, monitor, and a dom0
// client ready to create domains. Dom0 idles on core 0.
type Platform struct {
	Machine *Machine
	TPM     *TPM
	Monitor *Monitor
	// Dom0 is the initial domain's libtyche client, with a heap over
	// the domain's free memory.
	Dom0 *Client
}

func classOf(s string) hw.DeviceClass {
	switch s {
	case "accelerator":
		return hw.DevAccelerator
	case "nic":
		return hw.DevNIC
	case "storage":
		return hw.DevStorage
	default:
		return hw.DevGeneric
	}
}

// NewPlatform builds and boots a complete platform.
func NewPlatform(o Options) (*Platform, error) {
	if o.MemBytes == 0 {
		o.MemBytes = 32 << 20
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Devices == nil {
		o.Devices = []DeviceSpec{{Name: "gpu0", Class: "accelerator"}, {Name: "nic0", Class: "nic"}}
	}
	if o.Dom0ReservePages == 0 {
		o.Dom0ReservePages = 16
	}
	devs := make([]hw.DeviceConfig, len(o.Devices))
	for i, d := range o.Devices {
		devs[i] = hw.DeviceConfig{Name: d.Name, Class: classOf(d.Class)}
	}
	mach, err := hw.NewMachine(hw.Config{
		MemBytes:            o.MemBytes,
		NumCores:            o.Cores,
		PMPEntries:          o.PMPEntries,
		IOMMUAllowByDefault: true, // the monitor flips it at boot
		Devices:             devs,
	})
	if err != nil {
		return nil, err
	}
	rot, err := tpm.New(nil)
	if err != nil {
		return nil, err
	}
	mon, err := core.Boot(core.BootConfig{
		Machine:  mach,
		TPM:      rot,
		Backend:  o.Backend,
		Identity: o.MonitorIdentity,
	})
	if err != nil {
		return nil, err
	}
	cl := libtyche.New(mon, core.InitialDomain)
	if err := cl.AutoHeap(o.Dom0ReservePages); err != nil {
		return nil, err
	}
	// Minimal dom0 "kernel": an idle loop at page 4, launched on core 0
	// so dom0 can host mediated calls.
	idle := hw.NewAsm()
	idle.Hlt()
	entry := phys.Addr(4 * phys.PageSize)
	if err := mon.CopyInto(core.InitialDomain, entry, idle.MustAssemble(entry)); err != nil {
		return nil, err
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, entry); err != nil {
		return nil, err
	}
	if err := mon.Launch(core.InitialDomain, 0); err != nil {
		return nil, err
	}
	if _, err := mon.RunCore(0, 10); err != nil {
		return nil, err
	}
	return &Platform{Machine: mach, TPM: rot, Monitor: mon, Dom0: cl}, nil
}

// HostDom0 makes dom0 current on the given core too (for invoking
// service domains from additional cores).
func (p *Platform) HostDom0(c CoreID) error {
	if err := p.Monitor.Launch(core.InitialDomain, c); err != nil {
		return err
	}
	_, err := p.Monitor.RunCore(c, 10)
	return err
}

// Verifier returns a remote verifier trusting this platform's TPM and
// the monitor identity it booted with — the starting point of the
// judiciary chain. (A real remote verifier gets the endorsement key
// from the TPM manufacturer and the identity from the monitor vendor.)
func (p *Platform) Verifier() *Verifier {
	return attest.NewVerifier(p.TPM.EndorsementKey(), p.Monitor.Identity())
}

// VerifySession runs tier-one verification (boot quote) and returns a
// session for verifying domain reports.
func (p *Platform) VerifySession(nonce []byte) (*Session, error) {
	quote, err := p.Monitor.BootQuote(nonce)
	if err != nil {
		return nil, err
	}
	return p.Verifier().NewSession(quote, nonce)
}

// Cycles returns the machine's cycle counter (the simulated cost
// clock).
func (p *Platform) Cycles() uint64 { return p.Machine.Clock.Cycles() }

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("tyche platform: %d MiB, %d cores, backend=%s, %d devices",
		p.Machine.Mem.Size()>>20, len(p.Machine.Cores), p.Monitor.Backend(), len(p.Machine.Devices))
}
