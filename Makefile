# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race cover bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Micro-benchmarks + every experiment as testing.B benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure/claim table; exits non-zero if any
# shape check fails.
experiments:
	$(GO) run ./cmd/tyche-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/saas
	$(GO) run ./examples/nested_enclaves
	$(GO) run ./examples/driver_sandbox
	$(GO) run ./examples/attested_rdma

clean:
	$(GO) clean ./...
