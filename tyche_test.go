package tyche_test

import (
	"testing"

	tyche "github.com/tyche-sim/tyche"
)

// The root-package tests exercise the library exactly as a downstream
// user would: only the public API.

func addTwoImage(name string) *tyche.Image {
	a := tyche.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, 3) // CallReturn
	a.Vmcall()
	a.Hlt()
	return tyche.NewProgram(name, a.MustAssemble(0))
}

func TestPublicAPIQuickstart(t *testing.T) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Fatal("empty platform summary")
	}
	img := addTwoImage("svc")
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enclave.Invoke(0, 10000, 40)
	if err != nil || got != 42 {
		t.Fatalf("invoke = %d, %v", got, err)
	}

	// Full judiciary chain through the public API.
	sess, err := p.VerifySession([]byte("boot"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := enclave.Attest([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyDomain(rep, []byte("n")); err != nil {
		t.Fatal(err)
	}
	want, err := img.Measurement(enclave.Base())
	if err != nil {
		t.Fatal(err)
	}
	if err := tyche.RequireMeasurement(rep, want); err != nil {
		t.Fatal(err)
	}
	if err := tyche.RequireSealed(rep); err != nil {
		t.Fatal(err)
	}
	if err := tyche.RequireExclusiveMemory(rep); err != nil {
		t.Fatal(err)
	}

	// dom0 lost the enclave's memory.
	text, _ := enclave.SegmentRegion(".text")
	if p.Monitor.CheckAccess(tyche.InitialDomain, text.Start, tyche.RightRead) {
		t.Fatal("creator retains enclave access")
	}
	if err := enclave.Kill(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPMPBackend(t *testing.T) {
	p, err := tyche.NewPlatform(tyche.Options{Backend: tyche.BackendPMP, PMPEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	img := addTwoImage("svc")
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{0}
	enclave, err := p.Dom0.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enclave.Invoke(0, 10000, 1)
	if err != nil || got != 3 {
		t.Fatalf("invoke = %d, %v", got, err)
	}
}

func TestPublicAPIOSKit(t *testing.T) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		t.Fatal(err)
	}
	os, err := tyche.NewOSWithClient(p.Monitor, p.Dom0)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := os.Spawn("hello", func(base tyche.Addr) []byte {
		a := tyche.NewAsm()
		a.Movi(0, 2).Movi(1, 99).Syscall() // SysLog 99
		a.Movi(0, 1).Movi(1, 0).Syscall()  // SysExit 0
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 1000, 4); err != nil {
		t.Fatal(err)
	}
	proc, err := os.Process(pid)
	if err != nil {
		t.Fatal(err)
	}
	if logs := proc.Logs(); len(logs) != 1 || logs[0] != 99 {
		t.Fatalf("logs = %v", logs)
	}
}

func TestPublicAPIChannelsAndRefcounts(t *testing.T) {
	p, err := tyche.NewPlatform(tyche.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := tyche.DefaultLoadOptions()
	opts.Cores = []tyche.CoreID{1}
	opts.Seal = false
	dom, err := p.Dom0.Load(addTwoImage("peer"), opts)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Dom0.OpenChannel(dom.ID(), 1, tyche.CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	if ch.RefCount() != 2 {
		t.Fatalf("refcount = %d", ch.RefCount())
	}
	if err := ch.Write(0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := ch.ReadAs(dom.ID(), 0, 2)
	if err != nil || string(got) != "hi" {
		t.Fatalf("peer read = %q, %v", got, err)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
}
